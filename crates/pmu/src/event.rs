//! Typed event enumerations for every PMU in the system.
//!
//! Every enumeration implements [`Event`], which maps an event (including its
//! sub-event parameters) onto a dense index so a module's counter file can be
//! a flat `Vec<u64>` — increments on the simulator hot path are a single
//! array add, exactly like an MSR write on real silicon.

/// A PMU event: something a hardware counter can be programmed to count.
///
/// `CARD` is the cardinality of the event space (the number of distinct
/// programmable counters for this PMU) and `index` maps each event onto
/// `0..CARD` bijectively.
pub trait Event: Copy + core::fmt::Debug {
    /// Number of distinct counters in this event space.
    const CARD: usize;
    /// Dense index of this event, `< Self::CARD`.
    fn index(self) -> usize;
    /// The Linux-perf-style event name, e.g. `l2_rqsts.rfo_miss`.
    fn name(self) -> String;
}

/// The architectural request class that spawns a CXL.mem data path (§2.2).
///
/// * `Drd` — demand data read (path #1).
/// * `Dwr` — demand data write; becomes an RFO + later write-back (path #2).
/// * `Rfo` — read-for-ownership (path #3).
/// * `HwPfL1` / `HwPfL2Drd` / `HwPfL2Rfo` — hardware prefetches (path #4).
/// * `SwPf` — software prefetch; merges into the DRd path after L1D.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathClass {
    Drd,
    Dwr,
    Rfo,
    HwPfL1,
    HwPfL2Drd,
    HwPfL2Rfo,
    SwPf,
}

impl PathClass {
    /// All path classes, in canonical report order.
    pub const ALL: [PathClass; 7] = [
        PathClass::Drd,
        PathClass::Dwr,
        PathClass::Rfo,
        PathClass::HwPfL1,
        PathClass::HwPfL2Drd,
        PathClass::HwPfL2Rfo,
        PathClass::SwPf,
    ];

    pub const COUNT: usize = 7;

    pub fn idx(self) -> usize {
        match self {
            PathClass::Drd => 0,
            PathClass::Dwr => 1,
            PathClass::Rfo => 2,
            PathClass::HwPfL1 => 3,
            PathClass::HwPfL2Drd => 4,
            PathClass::HwPfL2Rfo => 5,
            PathClass::SwPf => 6,
        }
    }

    /// Short mnemonic used in reports ("DRd", "RFO", …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            PathClass::Drd => "DRd",
            PathClass::Dwr => "DWr",
            PathClass::Rfo => "RFO",
            PathClass::HwPfL1 => "HWPF.L1",
            PathClass::HwPfL2Drd => "HWPF.L2D",
            PathClass::HwPfL2Rfo => "HWPF.L2R",
            PathClass::SwPf => "SWPF",
        }
    }

    /// True for the read-like classes that produce CXL.mem loads.
    pub fn is_load_like(self) -> bool {
        !matches!(self, PathClass::Dwr)
    }

    /// Collapse to the paper's four-way report grouping (DRd/DWr/RFO/HWPF);
    /// SWPF merges into DRd after missing L1D (§2.2, path #4 note).
    pub fn report_group(self) -> PathClass {
        match self {
            PathClass::HwPfL1 | PathClass::HwPfL2Drd | PathClass::HwPfL2Rfo => PathClass::HwPfL1,
            PathClass::SwPf => PathClass::Drd,
            p => p,
        }
    }
}

/// The "9 scenarios" of the offcore-response (`ocr.*`) events (Table 2/5):
/// where a request that left the core was ultimately supplied from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RespScenario {
    /// (a) any type of response.
    AnyResponse,
    /// (b) hit in the L3 or snooped from another core's cache, same socket.
    L3HitSnoopLocal,
    /// (c) not supplied by the local socket's L1/L2/L3.
    MissLocalCaches,
    /// (d) supplied by DRAM attached to this socket (close SNC cluster).
    LocalDram,
    /// (e) hit a distant L3 / distant core's L1-L2 on this socket (SNC mode).
    SncDistantL3,
    /// (f) supplied by DRAM on a distant memory controller (SNC mode).
    SncDistantDram,
    /// (g) supplied by a remote-socket cache where a snoop hit a line.
    RemoteCacheHit,
    /// (h) supplied by DRAM attached to another socket.
    RemoteDram,
    /// (i) supplied by CXL DRAM.
    CxlDram,
}

impl RespScenario {
    pub const COUNT: usize = 9;
    pub const ALL: [RespScenario; 9] = [
        RespScenario::AnyResponse,
        RespScenario::L3HitSnoopLocal,
        RespScenario::MissLocalCaches,
        RespScenario::LocalDram,
        RespScenario::SncDistantL3,
        RespScenario::SncDistantDram,
        RespScenario::RemoteCacheHit,
        RespScenario::RemoteDram,
        RespScenario::CxlDram,
    ];

    pub fn idx(self) -> usize {
        match self {
            RespScenario::AnyResponse => 0,
            RespScenario::L3HitSnoopLocal => 1,
            RespScenario::MissLocalCaches => 2,
            RespScenario::LocalDram => 3,
            RespScenario::SncDistantL3 => 4,
            RespScenario::SncDistantDram => 5,
            RespScenario::RemoteCacheHit => 6,
            RespScenario::RemoteDram => 7,
            RespScenario::CxlDram => 8,
        }
    }

    pub fn suffix(self) -> &'static str {
        match self {
            RespScenario::AnyResponse => "any_response",
            RespScenario::L3HitSnoopLocal => "l3_hit",
            RespScenario::MissLocalCaches => "l3_miss_local_caches",
            RespScenario::LocalDram => "local_dram",
            RespScenario::SncDistantL3 => "snc_cache",
            RespScenario::SncDistantDram => "snc_dram",
            RespScenario::RemoteCacheHit => "remote_cache",
            RespScenario::RemoteDram => "remote_dram",
            RespScenario::CxlDram => "cxl_dram",
        }
    }
}

/// Sub-events of `mem_load_l3_hit_retired` (Table 2): 4 L3-hit data sources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L3HitSrc {
    /// HitM response from shared L3.
    XsnpHitm,
    /// L3 hit, cross-core snoop missed in an on-package core cache.
    XsnpMiss,
    /// L3 hit + cross-core snoop hit in an on-package core cache.
    XsnpHit,
    /// Plain L3 hit, no snoop required.
    XsnpNone,
}

impl L3HitSrc {
    pub const COUNT: usize = 4;
    pub const ALL: [L3HitSrc; 4] = [
        L3HitSrc::XsnpHitm,
        L3HitSrc::XsnpMiss,
        L3HitSrc::XsnpHit,
        L3HitSrc::XsnpNone,
    ];
    pub fn idx(self) -> usize {
        match self {
            L3HitSrc::XsnpHitm => 0,
            L3HitSrc::XsnpMiss => 1,
            L3HitSrc::XsnpHit => 2,
            L3HitSrc::XsnpNone => 3,
        }
    }
    pub fn suffix(self) -> &'static str {
        match self {
            L3HitSrc::XsnpHitm => "xsnp_hitm",
            L3HitSrc::XsnpMiss => "xsnp_miss",
            L3HitSrc::XsnpHit => "xsnp_hit",
            L3HitSrc::XsnpNone => "xsnp_none",
        }
    }
}

/// Sub-events of `mem_load_l3_miss_retired` (Table 2): 4 L3-miss data sources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L3MissSrc {
    LocalDram,
    RemoteDram,
    RemoteFwd,
    RemoteHitm,
}

impl L3MissSrc {
    pub const COUNT: usize = 4;
    pub const ALL: [L3MissSrc; 4] = [
        L3MissSrc::LocalDram,
        L3MissSrc::RemoteDram,
        L3MissSrc::RemoteFwd,
        L3MissSrc::RemoteHitm,
    ];
    pub fn idx(self) -> usize {
        match self {
            L3MissSrc::LocalDram => 0,
            L3MissSrc::RemoteDram => 1,
            L3MissSrc::RemoteFwd => 2,
            L3MissSrc::RemoteHitm => 3,
        }
    }
    pub fn suffix(self) -> &'static str {
        match self {
            L3MissSrc::LocalDram => "local_dram",
            L3MissSrc::RemoteDram => "remote_dram",
            L3MissSrc::RemoteFwd => "remote_fwd",
            L3MissSrc::RemoteHitm => "remote_hitm",
        }
    }
}

// ---------------------------------------------------------------------------
// Core PMU (paper Table 1 + per-core rows of Table 2)
// ---------------------------------------------------------------------------

/// Per-core PMU events (paper Table 1 plus the per-core rows of Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreEvent {
    /// Unhalted core clock ticks (reference for all cycle counters).
    CpuClkUnhalted,
    /// Retired instructions.
    InstRetired,

    // --- Store buffer -----------------------------------------------------
    /// `resource_stalls.sb`: stall cycles with SB full while loads still issue.
    ResourceStallsSb,
    /// `exe_activity.bound_on_stores`: SB full and no loads in flight.
    ExeActivityBoundOnStores,

    // --- L1D ----------------------------------------------------------------
    /// `cycle_activity.cycles_l1d_miss`: cycles any L1D-miss demand load is outstanding.
    CycleActivityCyclesL1dMiss,
    /// `memory_activity.stalls_l1d_miss`: execution-stall cycles under L1D miss.
    MemoryActivityStallsL1dMiss,
    /// `l1d.replacement`: L1D line evictions.
    L1dReplacement,
    /// `mem_load_retired.l1_hit`.
    MemLoadRetiredL1Hit,
    /// `mem_load_retired.l1_miss`.
    MemLoadRetiredL1Miss,

    // --- LFB ----------------------------------------------------------------
    /// `mem_load_retired.l1_fb_hit`: missed L1 but merged into an in-flight LFB entry.
    MemLoadRetiredL1FbHit,
    /// `l1d_pend_miss.fb_full`: cycles a demand request waited because the LFB was full.
    L1dPendMissFbFull,

    // --- L2 -----------------------------------------------------------------
    /// `mem_load_retired.l2_hit`.
    MemLoadRetiredL2Hit,
    /// `mem_load_retired.l2_miss`.
    MemLoadRetiredL2Miss,
    /// `mem_store_retired.l2_hit`.
    MemStoreRetiredL2Hit,
    /// `l2_rqsts.references`: every L2 access (hit or true miss).
    L2RqstsReferences,
    /// `offcore_requests.all_requests`: transactions that reached the super queue.
    OffcoreRequestsAllRequests,
    /// `l2_rqsts.all_demand_references`.
    L2RqstsAllDemandReferences,
    /// `l2_rqsts.all_demand_miss`.
    L2RqstsAllDemandMiss,
    /// `l2_rqsts.miss`: true misses of any read type.
    L2RqstsMiss,
    /// `offcore_requests.data_rd`: demand + prefetch data reads sent offcore.
    OffcoreRequestsDataRd,
    /// `l2_rqsts.all_demand_data_rd`.
    L2RqstsAllDemandDataRd,
    /// `l2_rqsts.demand_data_rd_hit`.
    L2RqstsDemandDataRdHit,
    /// `offcore_requests.demand_data_rd`.
    OffcoreRequestsDemandDataRd,
    /// `l2_rqsts.demand_data_rd_miss`.
    L2RqstsDemandDataRdMiss,
    /// `l2_rqsts.all_rfo` (demand RFO + L1D RFO prefetches — the paper's
    /// §5.9 limitation: demand and prefetch RFO are indistinguishable here).
    L2RqstsAllRfo,
    /// `l2_rqsts.rfo_hit`.
    L2RqstsRfoHit,
    /// `l2_rqsts.rfo_miss`.
    L2RqstsRfoMiss,
    /// `l2_rqsts.swpf_hit`.
    L2RqstsSwpfHit,
    /// `l2_rqsts.swpf_miss`.
    L2RqstsSwpfMiss,
    /// `l2_rqsts.hwpf_hit` (L2 hardware-prefetch hits).
    L2RqstsHwpfHit,
    /// `l2_rqsts.hwpf_miss`.
    L2RqstsHwpfMiss,
    /// `memory_activity.stalls_l2_miss`.
    MemoryActivityStallsL2Miss,
    /// `cycle_activity.cycles_l2_miss`.
    CycleActivityCyclesL2Miss,

    // --- Offcore-requests-outstanding latency counters ---------------------
    /// `offcore_requests_outstanding.data_rd`: per-cycle sum of outstanding data reads.
    OroDataRd,
    /// `offcore_requests_outstanding.cycles_with_data_rd`.
    OroCyclesWithDataRd,
    /// `offcore_requests_outstanding.demand_data_rd`.
    OroDemandDataRd,
    /// `offcore_requests_outstanding.cycles_with_demand_data_rd`.
    OroCyclesWithDemandDataRd,
    /// `offcore_requests_outstanding.cycles_with_demand_rfo`.
    OroCyclesWithDemandRfo,
    /// `mem_trans_retired.load_latency`: accumulated load latency (cycles).
    MemTransRetiredLoadLatency,
    /// Number of loads sampled into `mem_trans_retired.load_latency`.
    MemTransRetiredLoadCount,
    /// `mem_trans_retired.store_sample`: accumulated store commit latency.
    MemTransRetiredStoreSample,
    /// Number of stores sampled into `mem_trans_retired.store_sample`.
    MemTransRetiredStoreCount,

    // --- Core-scope LLC events (Table 2, per-core rows) ---------------------
    /// `cycle_activity.stalls_l3_miss`.
    CycleActivityStallsL3Miss,
    /// `offcore_requests_outstanding.l3_miss_demand_data_rd`.
    OroL3MissDemandDataRd,
    /// `mem_load_retired.l3_hit`.
    MemLoadRetiredL3Hit,
    /// `mem_load_retired.l3_miss`.
    MemLoadRetiredL3Miss,
    /// `mem_load_l3_hit_retired.*` (4 sub-events).
    MemLoadL3HitRetired(L3HitSrc),
    /// `mem_load_l3_miss_retired.*` (4 sub-events).
    MemLoadL3MissRetired(L3MissSrc),
    /// `longest_lat_cache.miss`.
    LongestLatCacheMiss,
    /// `longest_lat_cache.reference`.
    LongestLatCacheReference,
    /// `ocr.modified_write.any_response`: write-backs of modified lines.
    OcrModifiedWriteAnyResponse,
    /// `ocr.demand_data_rd.*` (9 scenarios).
    OcrDemandDataRd(RespScenario),
    /// `ocr.rfo.*` (9 scenarios).
    OcrRfo(RespScenario),
    /// `ocr.l1d_hw_pf.*` (9 scenarios).
    OcrL1dHwPf(RespScenario),
    /// `ocr.l2_hw_pf_drd.*` (9 scenarios).
    OcrL2HwPfDrd(RespScenario),
    /// `ocr.l2_hw_pf_rfo.*` (9 scenarios).
    OcrL2HwPfRfo(RespScenario),
    /// `ocr.swpf.*` (9 scenarios; SWPF merges into DRd at the uncore).
    OcrSwPf(RespScenario),
}

/// Number of simple (non-parameterised) `CoreEvent` variants (indices 0..=48).
const CORE_SIMPLE: usize = 49;

impl Event for CoreEvent {
    const CARD: usize = CORE_SIMPLE + L3HitSrc::COUNT + L3MissSrc::COUNT + 6 * RespScenario::COUNT;

    fn index(self) -> usize {
        use CoreEvent::*;
        match self {
            CpuClkUnhalted => 0,
            InstRetired => 1,
            ResourceStallsSb => 2,
            ExeActivityBoundOnStores => 3,
            CycleActivityCyclesL1dMiss => 4,
            MemoryActivityStallsL1dMiss => 5,
            L1dReplacement => 6,
            MemLoadRetiredL1Hit => 7,
            MemLoadRetiredL1Miss => 8,
            MemLoadRetiredL1FbHit => 9,
            L1dPendMissFbFull => 10,
            MemLoadRetiredL2Hit => 11,
            MemLoadRetiredL2Miss => 12,
            MemStoreRetiredL2Hit => 13,
            L2RqstsReferences => 14,
            OffcoreRequestsAllRequests => 15,
            L2RqstsAllDemandReferences => 16,
            L2RqstsAllDemandMiss => 17,
            L2RqstsMiss => 18,
            OffcoreRequestsDataRd => 19,
            L2RqstsAllDemandDataRd => 20,
            L2RqstsDemandDataRdHit => 21,
            OffcoreRequestsDemandDataRd => 22,
            L2RqstsDemandDataRdMiss => 23,
            L2RqstsAllRfo => 24,
            L2RqstsRfoHit => 25,
            L2RqstsRfoMiss => 26,
            L2RqstsSwpfHit => 27,
            L2RqstsSwpfMiss => 28,
            L2RqstsHwpfHit => 29,
            L2RqstsHwpfMiss => 30,
            MemoryActivityStallsL2Miss => 31,
            CycleActivityCyclesL2Miss => 32,
            OroDataRd => 33,
            OroCyclesWithDataRd => 34,
            OroDemandDataRd => 35,
            OroCyclesWithDemandDataRd => 36,
            OroCyclesWithDemandRfo => 37,
            MemTransRetiredLoadLatency => 38,
            MemTransRetiredLoadCount => 39,
            MemTransRetiredStoreSample => 40,
            MemTransRetiredStoreCount => 41,
            CycleActivityStallsL3Miss => 42,
            OroL3MissDemandDataRd => 43,
            MemLoadRetiredL3Hit => 44,
            MemLoadRetiredL3Miss => 45,
            LongestLatCacheMiss => 46,
            LongestLatCacheReference => 47,
            OcrModifiedWriteAnyResponse => 48,
            MemLoadL3HitRetired(s) => 49 + s.idx(),
            MemLoadL3MissRetired(s) => 49 + L3HitSrc::COUNT + s.idx(),
            OcrDemandDataRd(s) => 49 + L3HitSrc::COUNT + L3MissSrc::COUNT + s.idx(),
            OcrRfo(s) => 49 + L3HitSrc::COUNT + L3MissSrc::COUNT + RespScenario::COUNT + s.idx(),
            OcrL1dHwPf(s) => {
                49 + L3HitSrc::COUNT + L3MissSrc::COUNT + 2 * RespScenario::COUNT + s.idx()
            }
            OcrL2HwPfDrd(s) => {
                49 + L3HitSrc::COUNT + L3MissSrc::COUNT + 3 * RespScenario::COUNT + s.idx()
            }
            OcrL2HwPfRfo(s) => {
                49 + L3HitSrc::COUNT + L3MissSrc::COUNT + 4 * RespScenario::COUNT + s.idx()
            }
            OcrSwPf(s) => {
                49 + L3HitSrc::COUNT + L3MissSrc::COUNT + 5 * RespScenario::COUNT + s.idx()
            }
        }
    }

    fn name(self) -> String {
        use CoreEvent::*;
        match self {
            CpuClkUnhalted => "cpu_clk_unhalted.thread".into(),
            InstRetired => "inst_retired.any".into(),
            ResourceStallsSb => "resource_stalls.sb".into(),
            ExeActivityBoundOnStores => "exe_activity.bound_on_stores".into(),
            CycleActivityCyclesL1dMiss => "cycle_activity.cycles_l1d_miss".into(),
            MemoryActivityStallsL1dMiss => "memory_activity.stalls_l1d_miss".into(),
            L1dReplacement => "l1d.replacement".into(),
            MemLoadRetiredL1Hit => "mem_load_retired.l1_hit".into(),
            MemLoadRetiredL1Miss => "mem_load_retired.l1_miss".into(),
            MemLoadRetiredL1FbHit => "mem_load_retired.l1_fb_hit".into(),
            L1dPendMissFbFull => "l1d_pend_miss.fb_full".into(),
            MemLoadRetiredL2Hit => "mem_load_retired.l2_hit".into(),
            MemLoadRetiredL2Miss => "mem_load_retired.l2_miss".into(),
            MemStoreRetiredL2Hit => "mem_store_retired.l2_hit".into(),
            L2RqstsReferences => "l2_rqsts.references".into(),
            OffcoreRequestsAllRequests => "offcore_requests.all_requests".into(),
            L2RqstsAllDemandReferences => "l2_rqsts.all_demand_references".into(),
            L2RqstsAllDemandMiss => "l2_rqsts.all_demand_miss".into(),
            L2RqstsMiss => "l2_rqsts.miss".into(),
            OffcoreRequestsDataRd => "offcore_requests.data_rd".into(),
            L2RqstsAllDemandDataRd => "l2_rqsts.all_demand_data_rd".into(),
            L2RqstsDemandDataRdHit => "l2_rqsts.demand_data_rd_hit".into(),
            OffcoreRequestsDemandDataRd => "offcore_requests.demand_data_rd".into(),
            L2RqstsDemandDataRdMiss => "l2_rqsts.demand_data_rd_miss".into(),
            L2RqstsAllRfo => "l2_rqsts.all_rfo".into(),
            L2RqstsRfoHit => "l2_rqsts.rfo_hit".into(),
            L2RqstsRfoMiss => "l2_rqsts.rfo_miss".into(),
            L2RqstsSwpfHit => "l2_rqsts.swpf_hit".into(),
            L2RqstsSwpfMiss => "l2_rqsts.swpf_miss".into(),
            L2RqstsHwpfHit => "l2_rqsts.hwpf_hit".into(),
            L2RqstsHwpfMiss => "l2_rqsts.hwpf_miss".into(),
            MemoryActivityStallsL2Miss => "memory_activity.stalls_l2_miss".into(),
            CycleActivityCyclesL2Miss => "cycle_activity.cycles_l2_miss".into(),
            OroDataRd => "offcore_requests_outstanding.data_rd".into(),
            OroCyclesWithDataRd => "offcore_requests_outstanding.cycles_with_data_rd".into(),
            OroDemandDataRd => "offcore_requests_outstanding.demand_data_rd".into(),
            OroCyclesWithDemandDataRd => {
                "offcore_requests_outstanding.cycles_with_demand_data_rd".into()
            }
            OroCyclesWithDemandRfo => "offcore_requests_outstanding.cycles_with_demand_rfo".into(),
            MemTransRetiredLoadLatency => "mem_trans_retired.load_latency".into(),
            MemTransRetiredLoadCount => "mem_trans_retired.load_count".into(),
            MemTransRetiredStoreSample => "mem_trans_retired.store_sample".into(),
            MemTransRetiredStoreCount => "mem_trans_retired.store_count".into(),
            CycleActivityStallsL3Miss => "cycle_activity.stalls_l3_miss".into(),
            OroL3MissDemandDataRd => "offcore_requests_outstanding.l3_miss_demand_data_rd".into(),
            MemLoadRetiredL3Hit => "mem_load_retired.l3_hit".into(),
            MemLoadRetiredL3Miss => "mem_load_retired.l3_miss".into(),
            LongestLatCacheMiss => "longest_lat_cache.miss".into(),
            LongestLatCacheReference => "longest_lat_cache.reference".into(),
            OcrModifiedWriteAnyResponse => "ocr.modified_write.any_response".into(),
            MemLoadL3HitRetired(s) => format!("mem_load_l3_hit_retired.{}", s.suffix()),
            MemLoadL3MissRetired(s) => format!("mem_load_l3_miss_retired.{}", s.suffix()),
            OcrDemandDataRd(s) => format!("ocr.demand_data_rd.{}", s.suffix()),
            OcrRfo(s) => format!("ocr.rfo.{}", s.suffix()),
            OcrL1dHwPf(s) => format!("ocr.l1d_hw_pf.{}", s.suffix()),
            OcrL2HwPfDrd(s) => format!("ocr.l2_hw_pf_drd.{}", s.suffix()),
            OcrL2HwPfRfo(s) => format!("ocr.l2_hw_pf_rfo.{}", s.suffix()),
            OcrSwPf(s) => format!("ocr.swpf.{}", s.suffix()),
        }
    }
}

impl CoreEvent {
    /// Enumerate every core event (all sub-events expanded).
    pub fn all() -> Vec<CoreEvent> {
        use CoreEvent::*;
        let mut v = vec![
            CpuClkUnhalted,
            InstRetired,
            ResourceStallsSb,
            ExeActivityBoundOnStores,
            CycleActivityCyclesL1dMiss,
            MemoryActivityStallsL1dMiss,
            L1dReplacement,
            MemLoadRetiredL1Hit,
            MemLoadRetiredL1Miss,
            MemLoadRetiredL1FbHit,
            L1dPendMissFbFull,
            MemLoadRetiredL2Hit,
            MemLoadRetiredL2Miss,
            MemStoreRetiredL2Hit,
            L2RqstsReferences,
            OffcoreRequestsAllRequests,
            L2RqstsAllDemandReferences,
            L2RqstsAllDemandMiss,
            L2RqstsMiss,
            OffcoreRequestsDataRd,
            L2RqstsAllDemandDataRd,
            L2RqstsDemandDataRdHit,
            OffcoreRequestsDemandDataRd,
            L2RqstsDemandDataRdMiss,
            L2RqstsAllRfo,
            L2RqstsRfoHit,
            L2RqstsRfoMiss,
            L2RqstsSwpfHit,
            L2RqstsSwpfMiss,
            L2RqstsHwpfHit,
            L2RqstsHwpfMiss,
            MemoryActivityStallsL2Miss,
            CycleActivityCyclesL2Miss,
            OroDataRd,
            OroCyclesWithDataRd,
            OroDemandDataRd,
            OroCyclesWithDemandDataRd,
            OroCyclesWithDemandRfo,
            MemTransRetiredLoadLatency,
            MemTransRetiredLoadCount,
            MemTransRetiredStoreSample,
            MemTransRetiredStoreCount,
            CycleActivityStallsL3Miss,
            OroL3MissDemandDataRd,
            MemLoadRetiredL3Hit,
            MemLoadRetiredL3Miss,
            LongestLatCacheMiss,
            LongestLatCacheReference,
            OcrModifiedWriteAnyResponse,
        ];
        for s in L3HitSrc::ALL {
            v.push(MemLoadL3HitRetired(s));
        }
        for s in L3MissSrc::ALL {
            v.push(MemLoadL3MissRetired(s));
        }
        for s in RespScenario::ALL {
            v.push(OcrDemandDataRd(s));
        }
        for s in RespScenario::ALL {
            v.push(OcrRfo(s));
        }
        for s in RespScenario::ALL {
            v.push(OcrL1dHwPf(s));
        }
        for s in RespScenario::ALL {
            v.push(OcrL2HwPfDrd(s));
        }
        for s in RespScenario::ALL {
            v.push(OcrL2HwPfRfo(s));
        }
        for s in RespScenario::ALL {
            v.push(OcrSwPf(s));
        }
        v
    }

    /// The `ocr.*` event for a given path class and response scenario, as
    /// PFBuilder consumes it (Table 5, "Core" rows).
    pub fn ocr(path: PathClass, scen: RespScenario) -> CoreEvent {
        match path {
            PathClass::Drd => CoreEvent::OcrDemandDataRd(scen),
            PathClass::Rfo => CoreEvent::OcrRfo(scen),
            PathClass::HwPfL1 => CoreEvent::OcrL1dHwPf(scen),
            PathClass::HwPfL2Drd => CoreEvent::OcrL2HwPfDrd(scen),
            PathClass::HwPfL2Rfo => CoreEvent::OcrL2HwPfRfo(scen),
            PathClass::SwPf => CoreEvent::OcrSwPf(scen),
            PathClass::Dwr => CoreEvent::OcrModifiedWriteAnyResponse,
        }
    }
}

// ---------------------------------------------------------------------------
// CHA PMU (paper Table 2, socket rows)
// ---------------------------------------------------------------------------

/// `unc_cha_tor_*.ia` 4-scenario sub-events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IaScen {
    Total,
    HitLlc,
    MissLlc,
    MissCxl,
}

impl IaScen {
    pub const COUNT: usize = 4;
    pub const ALL: [IaScen; 4] = [
        IaScen::Total,
        IaScen::HitLlc,
        IaScen::MissLlc,
        IaScen::MissCxl,
    ];
    pub fn idx(self) -> usize {
        match self {
            IaScen::Total => 0,
            IaScen::HitLlc => 1,
            IaScen::MissLlc => 2,
            IaScen::MissCxl => 3,
        }
    }
    pub fn suffix(self) -> &'static str {
        match self {
            IaScen::Total => "all",
            IaScen::HitLlc => "hit",
            IaScen::MissLlc => "miss",
            IaScen::MissCxl => "miss_cxl",
        }
    }
}

/// `unc_cha_tor_*.ia_drd[_pref]` 9-scenario sub-events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TorDrdScen {
    Total,
    HitLlc,
    MissLlc,
    MissDdr,
    MissLocal,
    MissLocalDdr,
    MissRemote,
    MissRemoteDdr,
    MissCxl,
}

impl TorDrdScen {
    pub const COUNT: usize = 9;
    pub const ALL: [TorDrdScen; 9] = [
        TorDrdScen::Total,
        TorDrdScen::HitLlc,
        TorDrdScen::MissLlc,
        TorDrdScen::MissDdr,
        TorDrdScen::MissLocal,
        TorDrdScen::MissLocalDdr,
        TorDrdScen::MissRemote,
        TorDrdScen::MissRemoteDdr,
        TorDrdScen::MissCxl,
    ];
    pub fn idx(self) -> usize {
        match self {
            TorDrdScen::Total => 0,
            TorDrdScen::HitLlc => 1,
            TorDrdScen::MissLlc => 2,
            TorDrdScen::MissDdr => 3,
            TorDrdScen::MissLocal => 4,
            TorDrdScen::MissLocalDdr => 5,
            TorDrdScen::MissRemote => 6,
            TorDrdScen::MissRemoteDdr => 7,
            TorDrdScen::MissCxl => 8,
        }
    }
    pub fn suffix(self) -> &'static str {
        match self {
            TorDrdScen::Total => "all",
            TorDrdScen::HitLlc => "hit",
            TorDrdScen::MissLlc => "miss",
            TorDrdScen::MissDdr => "miss_ddr",
            TorDrdScen::MissLocal => "miss_local",
            TorDrdScen::MissLocalDdr => "miss_local_ddr",
            TorDrdScen::MissRemote => "miss_remote",
            TorDrdScen::MissRemoteDdr => "miss_remote_ddr",
            TorDrdScen::MissCxl => "miss_cxl",
        }
    }
}

/// `unc_cha_tor_*.ia_rfo[_pref]` 6-scenario sub-events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TorRfoScen {
    Total,
    HitLlc,
    MissLlc,
    MissLocal,
    MissRemote,
    MissCxl,
}

impl TorRfoScen {
    pub const COUNT: usize = 6;
    pub const ALL: [TorRfoScen; 6] = [
        TorRfoScen::Total,
        TorRfoScen::HitLlc,
        TorRfoScen::MissLlc,
        TorRfoScen::MissLocal,
        TorRfoScen::MissRemote,
        TorRfoScen::MissCxl,
    ];
    pub fn idx(self) -> usize {
        match self {
            TorRfoScen::Total => 0,
            TorRfoScen::HitLlc => 1,
            TorRfoScen::MissLlc => 2,
            TorRfoScen::MissLocal => 3,
            TorRfoScen::MissRemote => 4,
            TorRfoScen::MissCxl => 5,
        }
    }
    pub fn suffix(self) -> &'static str {
        match self {
            TorRfoScen::Total => "all",
            TorRfoScen::HitLlc => "hit",
            TorRfoScen::MissLlc => "miss",
            TorRfoScen::MissLocal => "miss_local",
            TorRfoScen::MissRemote => "miss_remote",
            TorRfoScen::MissCxl => "miss_cxl",
        }
    }
}

/// `unc_cha_tor_inserts.ia_wb` 5-scenario coherence-transition sub-events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WbScen {
    /// Write-back E/F → E.
    EfToE,
    /// Write-back E/F → I.
    EfToI,
    /// Write-back M → E.
    MToE,
    /// Write-back M → I.
    MToI,
    /// Write-back S → I.
    SToI,
}

impl WbScen {
    pub const COUNT: usize = 5;
    pub const ALL: [WbScen; 5] = [
        WbScen::EfToE,
        WbScen::EfToI,
        WbScen::MToE,
        WbScen::MToI,
        WbScen::SToI,
    ];
    pub fn idx(self) -> usize {
        match self {
            WbScen::EfToE => 0,
            WbScen::EfToI => 1,
            WbScen::MToE => 2,
            WbScen::MToI => 3,
            WbScen::SToI => 4,
        }
    }
    pub fn suffix(self) -> &'static str {
        match self {
            WbScen::EfToE => "wbeftoe",
            WbScen::EfToI => "wbeftoi",
            WbScen::MToE => "wbmtoe",
            WbScen::MToI => "wbmtoi",
            WbScen::SToI => "wbstoi",
        }
    }
}

/// Socket-scope CHA PMU events (paper Table 2).
///
/// The TOR (Table of Requests) is the CHA's request queue; PFBuilder uses its
/// insert counters to classify post-L2 paths, and PFEstimator/PFAnalyzer use
/// its occupancy counters to derive per-class latency via Little's law.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaEvent {
    /// Uncore clock ticks for this CHA.
    ClockTicks,
    /// LLC lookups that hit, any origin.
    LlcLookupHit,
    /// LLC lookups that missed.
    LlcLookupMiss,
    /// Snoop-filter hits (directory had the line).
    SfHit,
    /// Snoop-filter misses.
    SfMiss,
    /// Snoop-filter evictions (back-invalidations).
    SfEviction,
    /// Local (same-socket, cross-CHA) snoops issued.
    SnoopLocalSent,
    /// Remote (cross-socket) snoops issued.
    SnoopRemoteSent,
    /// Snoop responses that carried modified data (HitM).
    SnoopRspHitm,
    /// Snoop responses that hit clean data.
    SnoopRspHit,
    /// Snoop responses that missed.
    SnoopRspMiss,
    /// `unc_cha_tor_inserts.ia.*` (4 scenarios).
    TorInsertsIa(IaScen),
    /// `unc_cha_tor_inserts.ia_drd.*` (9 scenarios).
    TorInsertsIaDrd(TorDrdScen),
    /// `unc_cha_tor_inserts.ia_drd_pref.*` (9 scenarios).
    TorInsertsIaDrdPref(TorDrdScen),
    /// `unc_cha_tor_inserts.ia_rfo.*` (6 scenarios).
    TorInsertsIaRfo(TorRfoScen),
    /// `unc_cha_tor_inserts.ia_rfo_pref.*` (6 scenarios).
    TorInsertsIaRfoPref(TorRfoScen),
    /// `unc_cha_tor_inserts.ia_wb.*` (5 coherence transitions).
    TorInsertsIaWb(WbScen),
    /// `unc_cha_tor_occupancy.ia.*` (per-cycle valid-entry accumulation).
    TorOccupancyIa(IaScen),
    /// `unc_cha_tor_occupancy.ia_drd.*`.
    TorOccupancyIaDrd(TorDrdScen),
    /// `unc_cha_tor_occupancy.ia_drd_pref.*`.
    TorOccupancyIaDrdPref(TorDrdScen),
    /// `unc_cha_tor_occupancy.ia_rfo.*`.
    TorOccupancyIaRfo(TorRfoScen),
    /// `unc_cha_tor_occupancy.ia_rfo_pref.*`.
    TorOccupancyIaRfoPref(TorRfoScen),
    /// `unc_cha_tor_occupancy.ia_wbmtoi` (single write-back occupancy counter).
    TorOccupancyIaWbMtoI,
    /// `unc_cha_tor_threshold1.ia.*` (cycles the TOR class was non-empty).
    TorThreshold1Ia(IaScen),
    /// `unc_cha_tor_threshold1.ia_drd.*`.
    TorThreshold1IaDrd(TorDrdScen),
    /// `unc_cha_tor_threshold1.ia_drd_pref.*`.
    TorThreshold1IaDrdPref(TorDrdScen),
    /// `unc_cha_tor_threshold1.ia_rfo.*`.
    TorThreshold1IaRfo(TorRfoScen),
    /// `unc_cha_tor_threshold1.ia_rfo_pref.*`.
    TorThreshold1IaRfoPref(TorRfoScen),
}

const CHA_SIMPLE: usize = 11;
const CHA_IA: usize = IaScen::COUNT;
const CHA_DRD: usize = TorDrdScen::COUNT;
const CHA_RFO: usize = TorRfoScen::COUNT;
const CHA_WB: usize = WbScen::COUNT;

impl Event for ChaEvent {
    const CARD: usize = CHA_SIMPLE
        + 3 * CHA_IA          // inserts/occupancy/threshold1 .ia
        + 6 * CHA_DRD         // drd + drd_pref across the three families
        + 6 * CHA_RFO         // rfo + rfo_pref across the three families
        + CHA_WB              // inserts.ia_wb
        + 1; // occupancy.ia_wbmtoi

    fn index(self) -> usize {
        use ChaEvent::*;
        let base_ins_ia = CHA_SIMPLE;
        let base_ins_drd = base_ins_ia + CHA_IA;
        let base_ins_drdp = base_ins_drd + CHA_DRD;
        let base_ins_rfo = base_ins_drdp + CHA_DRD;
        let base_ins_rfop = base_ins_rfo + CHA_RFO;
        let base_ins_wb = base_ins_rfop + CHA_RFO;
        let base_occ_ia = base_ins_wb + CHA_WB;
        let base_occ_drd = base_occ_ia + CHA_IA;
        let base_occ_drdp = base_occ_drd + CHA_DRD;
        let base_occ_rfo = base_occ_drdp + CHA_DRD;
        let base_occ_rfop = base_occ_rfo + CHA_RFO;
        let base_occ_wb = base_occ_rfop + CHA_RFO;
        let base_th_ia = base_occ_wb + 1;
        let base_th_drd = base_th_ia + CHA_IA;
        let base_th_drdp = base_th_drd + CHA_DRD;
        let base_th_rfo = base_th_drdp + CHA_DRD;
        let base_th_rfop = base_th_rfo + CHA_RFO;
        match self {
            ClockTicks => 0,
            LlcLookupHit => 1,
            LlcLookupMiss => 2,
            SfHit => 3,
            SfMiss => 4,
            SfEviction => 5,
            SnoopLocalSent => 6,
            SnoopRemoteSent => 7,
            SnoopRspHitm => 8,
            SnoopRspHit => 9,
            SnoopRspMiss => 10,
            TorInsertsIa(s) => base_ins_ia + s.idx(),
            TorInsertsIaDrd(s) => base_ins_drd + s.idx(),
            TorInsertsIaDrdPref(s) => base_ins_drdp + s.idx(),
            TorInsertsIaRfo(s) => base_ins_rfo + s.idx(),
            TorInsertsIaRfoPref(s) => base_ins_rfop + s.idx(),
            TorInsertsIaWb(s) => base_ins_wb + s.idx(),
            TorOccupancyIa(s) => base_occ_ia + s.idx(),
            TorOccupancyIaDrd(s) => base_occ_drd + s.idx(),
            TorOccupancyIaDrdPref(s) => base_occ_drdp + s.idx(),
            TorOccupancyIaRfo(s) => base_occ_rfo + s.idx(),
            TorOccupancyIaRfoPref(s) => base_occ_rfop + s.idx(),
            TorOccupancyIaWbMtoI => base_occ_wb,
            TorThreshold1Ia(s) => base_th_ia + s.idx(),
            TorThreshold1IaDrd(s) => base_th_drd + s.idx(),
            TorThreshold1IaDrdPref(s) => base_th_drdp + s.idx(),
            TorThreshold1IaRfo(s) => base_th_rfo + s.idx(),
            TorThreshold1IaRfoPref(s) => base_th_rfop + s.idx(),
        }
    }

    fn name(self) -> String {
        use ChaEvent::*;
        match self {
            ClockTicks => "unc_cha_clockticks".into(),
            LlcLookupHit => "unc_cha_llc_lookup.hit".into(),
            LlcLookupMiss => "unc_cha_llc_lookup.miss".into(),
            SfHit => "unc_cha_sf_lookup.hit".into(),
            SfMiss => "unc_cha_sf_lookup.miss".into(),
            SfEviction => "unc_cha_sf_eviction".into(),
            SnoopLocalSent => "unc_cha_snoops_sent.local".into(),
            SnoopRemoteSent => "unc_cha_snoops_sent.remote".into(),
            SnoopRspHitm => "unc_cha_snoop_resp.hitm".into(),
            SnoopRspHit => "unc_cha_snoop_resp.hit".into(),
            SnoopRspMiss => "unc_cha_snoop_resp.miss".into(),
            TorInsertsIa(s) => format!("unc_cha_tor_inserts.ia_{}", s.suffix()),
            TorInsertsIaDrd(s) => format!("unc_cha_tor_inserts.ia_drd_{}", s.suffix()),
            TorInsertsIaDrdPref(s) => format!("unc_cha_tor_inserts.ia_drd_pref_{}", s.suffix()),
            TorInsertsIaRfo(s) => format!("unc_cha_tor_inserts.ia_rfo_{}", s.suffix()),
            TorInsertsIaRfoPref(s) => format!("unc_cha_tor_inserts.ia_rfo_pref_{}", s.suffix()),
            TorInsertsIaWb(s) => format!("unc_cha_tor_inserts.ia_{}", s.suffix()),
            TorOccupancyIa(s) => format!("unc_cha_tor_occupancy.ia_{}", s.suffix()),
            TorOccupancyIaDrd(s) => format!("unc_cha_tor_occupancy.ia_drd_{}", s.suffix()),
            TorOccupancyIaDrdPref(s) => {
                format!("unc_cha_tor_occupancy.ia_drd_pref_{}", s.suffix())
            }
            TorOccupancyIaRfo(s) => format!("unc_cha_tor_occupancy.ia_rfo_{}", s.suffix()),
            TorOccupancyIaRfoPref(s) => {
                format!("unc_cha_tor_occupancy.ia_rfo_pref_{}", s.suffix())
            }
            TorOccupancyIaWbMtoI => "unc_cha_tor_occupancy.ia_wbmtoi".into(),
            TorThreshold1Ia(s) => format!("unc_cha_tor_threshold1.ia_{}", s.suffix()),
            TorThreshold1IaDrd(s) => format!("unc_cha_tor_threshold1.ia_drd_{}", s.suffix()),
            TorThreshold1IaDrdPref(s) => {
                format!("unc_cha_tor_threshold1.ia_drd_pref_{}", s.suffix())
            }
            TorThreshold1IaRfo(s) => format!("unc_cha_tor_threshold1.ia_rfo_{}", s.suffix()),
            TorThreshold1IaRfoPref(s) => {
                format!("unc_cha_tor_threshold1.ia_rfo_pref_{}", s.suffix())
            }
        }
    }
}

impl ChaEvent {
    /// Enumerate every CHA event (all sub-events expanded).
    pub fn all() -> Vec<ChaEvent> {
        use ChaEvent::*;
        let mut v = vec![
            ClockTicks,
            LlcLookupHit,
            LlcLookupMiss,
            SfHit,
            SfMiss,
            SfEviction,
            SnoopLocalSent,
            SnoopRemoteSent,
            SnoopRspHitm,
            SnoopRspHit,
            SnoopRspMiss,
        ];
        for s in IaScen::ALL {
            v.push(TorInsertsIa(s));
        }
        for s in TorDrdScen::ALL {
            v.push(TorInsertsIaDrd(s));
        }
        for s in TorDrdScen::ALL {
            v.push(TorInsertsIaDrdPref(s));
        }
        for s in TorRfoScen::ALL {
            v.push(TorInsertsIaRfo(s));
        }
        for s in TorRfoScen::ALL {
            v.push(TorInsertsIaRfoPref(s));
        }
        for s in WbScen::ALL {
            v.push(TorInsertsIaWb(s));
        }
        for s in IaScen::ALL {
            v.push(TorOccupancyIa(s));
        }
        for s in TorDrdScen::ALL {
            v.push(TorOccupancyIaDrd(s));
        }
        for s in TorDrdScen::ALL {
            v.push(TorOccupancyIaDrdPref(s));
        }
        for s in TorRfoScen::ALL {
            v.push(TorOccupancyIaRfo(s));
        }
        for s in TorRfoScen::ALL {
            v.push(TorOccupancyIaRfoPref(s));
        }
        v.push(TorOccupancyIaWbMtoI);
        for s in IaScen::ALL {
            v.push(TorThreshold1Ia(s));
        }
        for s in TorDrdScen::ALL {
            v.push(TorThreshold1IaDrd(s));
        }
        for s in TorDrdScen::ALL {
            v.push(TorThreshold1IaDrdPref(s));
        }
        for s in TorRfoScen::ALL {
            v.push(TorThreshold1IaRfo(s));
        }
        for s in TorRfoScen::ALL {
            v.push(TorThreshold1IaRfoPref(s));
        }
        v
    }
}

// ---------------------------------------------------------------------------
// IMC PMU (paper Table 3, per-channel)
// ---------------------------------------------------------------------------

/// Per-channel integrated-memory-controller events (paper Table 3).
///
/// The paper exposes each counter per pseudo-channel (`.pch0`/`.pch1`); here a
/// [`crate::bank::Bank<ImcEvent>`] is instantiated per pseudo-channel and the
/// channel id is carried by the bank's position in [`crate::SystemPmu`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImcEvent {
    /// DRAM clock ticks.
    ClockTicks,
    /// `unc_m_rpq_cycles_ne`: cycles the Read Pending Queue was non-empty.
    RpqCyclesNe,
    /// `unc_m_wpq_cycles_ne`.
    WpqCyclesNe,
    /// `unc_m_cas_count.all`.
    CasCountAll,
    /// `unc_m_cas_count.rd`.
    CasCountRd,
    /// `unc_m_cas_count.wr`.
    CasCountWr,
    /// `unc_m_rpq_inserts`.
    RpqInserts,
    /// `unc_m_wpq_inserts`.
    WpqInserts,
    /// `unc_m_rpq_occupancy`: per-cycle RPQ occupancy accumulation.
    RpqOccupancy,
    /// `unc_m_wpq_occupancy`.
    WpqOccupancy,
}

impl Event for ImcEvent {
    const CARD: usize = 10;
    fn index(self) -> usize {
        use ImcEvent::*;
        match self {
            ClockTicks => 0,
            RpqCyclesNe => 1,
            WpqCyclesNe => 2,
            CasCountAll => 3,
            CasCountRd => 4,
            CasCountWr => 5,
            RpqInserts => 6,
            WpqInserts => 7,
            RpqOccupancy => 8,
            WpqOccupancy => 9,
        }
    }
    fn name(self) -> String {
        use ImcEvent::*;
        match self {
            ClockTicks => "unc_m_clockticks".into(),
            RpqCyclesNe => "unc_m_rpq_cycles_ne".into(),
            WpqCyclesNe => "unc_m_wpq_cycles_ne".into(),
            CasCountAll => "unc_m_cas_count.all".into(),
            CasCountRd => "unc_m_cas_count.rd".into(),
            CasCountWr => "unc_m_cas_count.wr".into(),
            RpqInserts => "unc_m_rpq_inserts".into(),
            WpqInserts => "unc_m_wpq_inserts".into(),
            RpqOccupancy => "unc_m_rpq_occupancy".into(),
            WpqOccupancy => "unc_m_wpq_occupancy".into(),
        }
    }
}

impl ImcEvent {
    pub fn all() -> Vec<ImcEvent> {
        use ImcEvent::*;
        vec![
            ClockTicks,
            RpqCyclesNe,
            WpqCyclesNe,
            CasCountAll,
            CasCountRd,
            CasCountWr,
            RpqInserts,
            WpqInserts,
            RpqOccupancy,
            WpqOccupancy,
        ]
    }
}

// ---------------------------------------------------------------------------
// M2PCIe PMU (paper Table 3, per endpoint)
// ---------------------------------------------------------------------------

/// Mesh-to-PCIe (FlexBus root complex) events, per CXL endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum M2pEvent {
    /// Uncore clock ticks.
    ClockTicks,
    /// `unc_m2p_rxc_cycles_ne.all`: cycles the ingress queue was non-empty.
    RxcCyclesNe,
    /// `unc_m2p_rxc_inserts.all`: entries inserted from the mesh.
    RxcInserts,
    /// `unc_m2p_rxc_occupancy.all`: per-cycle ingress-queue occupancy.
    RxcOccupancy,
    /// `unc_m2p_txc_inserts.ak`: acknowledgement entries to the mesh (stores).
    TxcInsertsAk,
    /// `unc_m2p_txc_inserts.bl`: cache-line data entries to the mesh (loads).
    TxcInsertsBl,
}

impl Event for M2pEvent {
    const CARD: usize = 6;
    fn index(self) -> usize {
        use M2pEvent::*;
        match self {
            ClockTicks => 0,
            RxcCyclesNe => 1,
            RxcInserts => 2,
            RxcOccupancy => 3,
            TxcInsertsAk => 4,
            TxcInsertsBl => 5,
        }
    }
    fn name(self) -> String {
        use M2pEvent::*;
        match self {
            ClockTicks => "unc_m2p_clockticks".into(),
            RxcCyclesNe => "unc_m2p_rxc_cycles_ne.all".into(),
            RxcInserts => "unc_m2p_rxc_inserts.all".into(),
            RxcOccupancy => "unc_m2p_rxc_occupancy.all".into(),
            TxcInsertsAk => "unc_m2p_txc_inserts.ak".into(),
            TxcInsertsBl => "unc_m2p_txc_inserts.bl".into(),
        }
    }
}

impl M2pEvent {
    pub fn all() -> Vec<M2pEvent> {
        use M2pEvent::*;
        vec![
            ClockTicks,
            RxcCyclesNe,
            RxcInserts,
            RxcOccupancy,
            TxcInsertsAk,
            TxcInsertsBl,
        ]
    }
}

// ---------------------------------------------------------------------------
// CXL device PMU (paper Table 4)
// ---------------------------------------------------------------------------

/// CXL Type-3 device events (paper Table 4): the M2S/S2M packing buffers of
/// the CXL.mem link layer, plus device-MC occupancy used for QoS telemetry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CxlEvent {
    /// Device clock ticks.
    ClockTicks,
    /// `unc_cxlcm_rxc_pack_buf_inserts.mem_req`: M2S Req allocations.
    RxcPackBufInsertsMemReq,
    /// `unc_cxlcm_rxc_pack_buf_inserts.mem_data`: M2S RwD allocations.
    RxcPackBufInsertsMemData,
    /// `unc_cxlcm_rxc_pack_buf_full.mem_req`: cycles the Req buffer was full.
    RxcPackBufFullMemReq,
    /// `unc_cxlcm_rxc_pack_buf_full.mem_data`.
    RxcPackBufFullMemData,
    /// `unc_cxlcm_rxc_pack_buf_ne.mem_req`: cycles the Req buffer was non-empty.
    RxcPackBufNeMemReq,
    /// `unc_cxlcm_rxc_pack_buf_ne.mem_data`.
    RxcPackBufNeMemData,
    /// `unc_cxlcm_txc_pack_buf_inserts.mem_req`: S2M NDR allocations.
    TxcPackBufInsertsMemReq,
    /// `unc_cxlcm_txc_pack_buf_inserts.mem_data`: S2M DRS allocations.
    TxcPackBufInsertsMemData,
    /// Per-cycle occupancy of the M2S Req packing buffer.
    RxcPackBufOccupancyMemReq,
    /// Per-cycle occupancy of the M2S RwD packing buffer.
    RxcPackBufOccupancyMemData,
    /// Device-MC read-queue per-cycle occupancy (QoS telemetry input).
    DevMcRpqOccupancy,
    /// Device-MC write-queue per-cycle occupancy.
    DevMcWpqOccupancy,
    /// Device-MC read commands serviced.
    DevMcRdCas,
    /// Device-MC write commands serviced.
    DevMcWrCas,
}

impl Event for CxlEvent {
    const CARD: usize = 15;
    fn index(self) -> usize {
        use CxlEvent::*;
        match self {
            ClockTicks => 0,
            RxcPackBufInsertsMemReq => 1,
            RxcPackBufInsertsMemData => 2,
            RxcPackBufFullMemReq => 3,
            RxcPackBufFullMemData => 4,
            RxcPackBufNeMemReq => 5,
            RxcPackBufNeMemData => 6,
            TxcPackBufInsertsMemReq => 7,
            TxcPackBufInsertsMemData => 8,
            RxcPackBufOccupancyMemReq => 9,
            RxcPackBufOccupancyMemData => 10,
            DevMcRpqOccupancy => 11,
            DevMcWpqOccupancy => 12,
            DevMcRdCas => 13,
            DevMcWrCas => 14,
        }
    }
    fn name(self) -> String {
        use CxlEvent::*;
        match self {
            ClockTicks => "unc_cxlcm_clockticks".into(),
            RxcPackBufInsertsMemReq => "unc_cxlcm_rxc_pack_buf_inserts.mem_req".into(),
            RxcPackBufInsertsMemData => "unc_cxlcm_rxc_pack_buf_inserts.mem_data".into(),
            RxcPackBufFullMemReq => "unc_cxlcm_rxc_pack_buf_full.mem_req".into(),
            RxcPackBufFullMemData => "unc_cxlcm_rxc_pack_buf_full.mem_data".into(),
            RxcPackBufNeMemReq => "unc_cxlcm_rxc_pack_buf_ne.mem_req".into(),
            RxcPackBufNeMemData => "unc_cxlcm_rxc_pack_buf_ne.mem_data".into(),
            TxcPackBufInsertsMemReq => "unc_cxlcm_txc_pack_buf_inserts.mem_req".into(),
            TxcPackBufInsertsMemData => "unc_cxlcm_txc_pack_buf_inserts.mem_data".into(),
            RxcPackBufOccupancyMemReq => "unc_cxlcm_rxc_pack_buf_occupancy.mem_req".into(),
            RxcPackBufOccupancyMemData => "unc_cxlcm_rxc_pack_buf_occupancy.mem_data".into(),
            DevMcRpqOccupancy => "unc_cxldev_mc_rpq_occupancy".into(),
            DevMcWpqOccupancy => "unc_cxldev_mc_wpq_occupancy".into(),
            DevMcRdCas => "unc_cxldev_mc_cas.rd".into(),
            DevMcWrCas => "unc_cxldev_mc_cas.wr".into(),
        }
    }
}

impl CxlEvent {
    pub fn all() -> Vec<CxlEvent> {
        use CxlEvent::*;
        vec![
            ClockTicks,
            RxcPackBufInsertsMemReq,
            RxcPackBufInsertsMemData,
            RxcPackBufFullMemReq,
            RxcPackBufFullMemData,
            RxcPackBufNeMemReq,
            RxcPackBufNeMemData,
            TxcPackBufInsertsMemReq,
            TxcPackBufInsertsMemData,
            RxcPackBufOccupancyMemReq,
            RxcPackBufOccupancyMemData,
            DevMcRpqOccupancy,
            DevMcWpqOccupancy,
            DevMcRdCas,
            DevMcWrCas,
        ]
    }
}

// ---------------------------------------------------------------------
// CXL switch PMU (`unc_cxlsw_*`) — one bank per upstream port
// ---------------------------------------------------------------------

/// Events of one CXL switch upstream port (the fabric topology's `cxlsw`
/// stages). Real CXL 2.0 switches expose per-port ingress/egress telemetry;
/// this is the minimal set the fabric's per-host path attribution needs:
/// where requests queued, who got the shared downstream link, and how long
/// a port's head-of-line request sat blocked behind other ports' grants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchEvent {
    /// Switch clock ticks (per upstream port, mirrors the other uncore
    /// clocktick banks so dropout detection generalises).
    ClockTicks,
    /// Requests accepted into this port's ingress queue.
    IngressInserts,
    /// Entry-cycles requests spent queued at this port before their grant.
    IngressOccupancy,
    /// Arbitration grants won by this port on the shared downstream link.
    ArbGrants,
    /// Cycles this port's head-of-line request waited while the shared
    /// link was granted to a *different* port (the HOL-blocking signal).
    HolBlockedCycles,
    /// Cycles the shared downstream link spent serving this port's flits
    /// (per-port decomposition of link utilisation).
    LinkBusyCycles,
}

impl Event for SwitchEvent {
    const CARD: usize = 6;
    fn index(self) -> usize {
        use SwitchEvent::*;
        match self {
            ClockTicks => 0,
            IngressInserts => 1,
            IngressOccupancy => 2,
            ArbGrants => 3,
            HolBlockedCycles => 4,
            LinkBusyCycles => 5,
        }
    }
    fn name(self) -> String {
        use SwitchEvent::*;
        match self {
            ClockTicks => "unc_cxlsw_clockticks".into(),
            IngressInserts => "unc_cxlsw_ingress_inserts.port".into(),
            IngressOccupancy => "unc_cxlsw_ingress_occupancy.port".into(),
            ArbGrants => "unc_cxlsw_arb_grants.port".into(),
            HolBlockedCycles => "unc_cxlsw_hol_blocked_cycles.port".into(),
            LinkBusyCycles => "unc_cxlsw_link_busy_cycles.port".into(),
        }
    }
}

impl SwitchEvent {
    pub fn all() -> Vec<SwitchEvent> {
        use SwitchEvent::*;
        vec![
            ClockTicks,
            IngressInserts,
            IngressOccupancy,
            ArbGrants,
            HolBlockedCycles,
            LinkBusyCycles,
        ]
    }
}

// ---------------------------------------------------------------------
// Pooled Type-3 device PMU (`unc_cxlpool_*`) — one bank per host
// ---------------------------------------------------------------------

/// Events of the pooled Type-3 device, decomposed per tenant host. The
/// device-side MC queues are shared by N hosts; these counters attribute
/// the shared queue's occupancy, bandwidth, and contention penalty back to
/// the host that caused or suffered them — the input to the fabric
/// analyzer's victim/culprit naming.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolEvent {
    /// Pooled-device clock ticks (per host bank).
    ClockTicks,
    /// Shared-MC read CAS commands issued on behalf of this host.
    McRdCas,
    /// Shared-MC write CAS commands issued on behalf of this host.
    McWrCas,
    /// Entry-cycles this host's requests spent resident in the shared MC
    /// queue (occupancy integral).
    McOccupancy,
    /// Cycles this host's requests waited for the shared MC to start
    /// service (queueing delay only, service time excluded).
    McWaitCycles,
    /// The contention penalty: cycles of wait this host's requests paid
    /// *beyond* what an identical private (unshared) device would have
    /// charged. Exactly zero for a 1-host fabric.
    ExcessWaitCycles,
}

impl Event for PoolEvent {
    const CARD: usize = 6;
    fn index(self) -> usize {
        use PoolEvent::*;
        match self {
            ClockTicks => 0,
            McRdCas => 1,
            McWrCas => 2,
            McOccupancy => 3,
            McWaitCycles => 4,
            ExcessWaitCycles => 5,
        }
    }
    fn name(self) -> String {
        use PoolEvent::*;
        match self {
            ClockTicks => "unc_cxlpool_clockticks".into(),
            McRdCas => "unc_cxlpool_mc_cas.rd".into(),
            McWrCas => "unc_cxlpool_mc_cas.wr".into(),
            McOccupancy => "unc_cxlpool_mc_occupancy.host".into(),
            McWaitCycles => "unc_cxlpool_mc_wait_cycles.host".into(),
            ExcessWaitCycles => "unc_cxlpool_mc_excess_wait_cycles.host".into(),
        }
    }
}

impl PoolEvent {
    pub fn all() -> Vec<PoolEvent> {
        use PoolEvent::*;
        vec![
            ClockTicks,
            McRdCas,
            McWrCas,
            McOccupancy,
            McWaitCycles,
            ExcessWaitCycles,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_dense<E: Event>(all: &[E]) {
        let mut seen = HashSet::new();
        for e in all {
            let i = e.index();
            assert!(i < E::CARD, "{:?} index {} >= CARD {}", e, i, E::CARD);
            assert!(seen.insert(i), "duplicate index {} for {:?}", i, e);
        }
        assert_eq!(seen.len(), E::CARD, "event space not fully covered");
    }

    #[test]
    fn core_events_are_dense_and_unique() {
        check_dense(&CoreEvent::all());
    }

    #[test]
    fn cha_events_are_dense_and_unique() {
        check_dense(&ChaEvent::all());
    }

    #[test]
    fn imc_events_are_dense_and_unique() {
        check_dense(&ImcEvent::all());
    }

    #[test]
    fn m2p_events_are_dense_and_unique() {
        check_dense(&M2pEvent::all());
    }

    #[test]
    fn cxl_events_are_dense_and_unique() {
        check_dense(&CxlEvent::all());
    }

    #[test]
    fn switch_events_are_dense_and_unique() {
        check_dense(&SwitchEvent::all());
    }

    #[test]
    fn pool_events_are_dense_and_unique() {
        check_dense(&PoolEvent::all());
    }

    #[test]
    fn event_names_are_unique_within_a_pmu() {
        let names: Vec<String> = CoreEvent::all().iter().map(|e| e.name()).collect();
        let set: HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn path_class_round_trips() {
        for p in PathClass::ALL {
            assert!(p.idx() < PathClass::COUNT);
            assert_eq!(PathClass::ALL[p.idx()], p);
        }
    }

    #[test]
    fn report_group_collapses_prefetch_variants() {
        assert_eq!(PathClass::HwPfL2Drd.report_group(), PathClass::HwPfL1);
        assert_eq!(PathClass::HwPfL2Rfo.report_group(), PathClass::HwPfL1);
        assert_eq!(PathClass::SwPf.report_group(), PathClass::Drd);
        assert_eq!(PathClass::Drd.report_group(), PathClass::Drd);
        assert_eq!(PathClass::Dwr.report_group(), PathClass::Dwr);
    }

    #[test]
    fn the_dissection_exposes_at_least_232_counters() {
        // §3 of the paper: "identify 232 counters to dissect the CXL.mem
        // protocol execution". Our taxonomy expands sub-events the same way.
        let total = CoreEvent::all().len()
            + ChaEvent::all().len()
            + ImcEvent::all().len()
            + M2pEvent::all().len()
            + CxlEvent::all().len();
        assert!(total >= 232, "only {} counters exposed", total);
    }
}
