//! A fixed-size counter file for one architectural module.

use crate::event::Event;

/// A counter file: one 64-bit free-running counter per event of an event
/// space `E`. This mirrors a hardware PMU's MSR bank — all counters count
/// simultaneously (unlike real PMUs we are not limited to 4–8 programmable
/// slots, which is fine: PathFinder multiplexes counter groups on real
/// hardware and the union is what a snapshot logically contains).
#[derive(Clone, Debug)]
pub struct Bank<E: Event> {
    counters: Vec<u64>,
    _marker: core::marker::PhantomData<E>,
}

impl<E: Event> Default for Bank<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Event> Bank<E> {
    /// A bank with all counters at zero.
    pub fn new() -> Self {
        Bank {
            counters: vec![0; E::CARD],
            _marker: core::marker::PhantomData,
        }
    }

    /// Increment `event` by one.
    #[inline]
    pub fn inc(&mut self, event: E) {
        self.counters[event.index()] += 1;
    }

    /// Add `n` to `event` (used for occupancy accumulation: `+= queue_len`).
    #[inline]
    pub fn add(&mut self, event: E, n: u64) {
        self.counters[event.index()] += n;
    }

    /// Read the current value of `event`.
    #[inline]
    pub fn read(&self, event: E) -> u64 {
        self.counters[event.index()]
    }

    /// Reset every counter to zero (the PMU "global reset" signal).
    pub fn reset(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
    }

    /// Raw view over all counters, index order. Used by snapshots.
    pub fn raw(&self) -> &[u64] {
        &self.counters
    }

    /// Overwrite this bank's counters with `other`'s, reusing the existing
    /// allocation (`Vec::clone_from` is a memcpy when capacities match).
    /// Semantically identical to `*self = other.clone()` without the heap
    /// round-trip — the basis of snapshot pooling (see PERFORMANCE.md).
    pub fn copy_from(&mut self, other: &Bank<E>) {
        self.counters.clone_from(&other.counters);
    }

    /// Element-wise difference `self - earlier`, saturating at zero.
    ///
    /// Counters are free-running, so a profiling epoch's activity is the
    /// delta between two successive snapshots.
    pub fn delta(&self, earlier: &Bank<E>) -> Bank<E> {
        let counters = self
            .counters
            .iter()
            .zip(earlier.counters.iter())
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        Bank {
            counters,
            _marker: core::marker::PhantomData,
        }
    }

    /// Element-wise sum, used to aggregate per-module banks (e.g. all CHA
    /// slices of a socket) into one logical bank.
    pub fn merge(&mut self, other: &Bank<E>) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += *b;
        }
    }

    /// Sum of all counters — handy as a cheap activity signal in tests.
    pub fn total(&self) -> u64 {
        self.counters.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CoreEvent, ImcEvent};

    #[test]
    fn inc_add_read_roundtrip() {
        let mut b: Bank<CoreEvent> = Bank::new();
        b.inc(CoreEvent::ResourceStallsSb);
        b.add(CoreEvent::ResourceStallsSb, 9);
        assert_eq!(b.read(CoreEvent::ResourceStallsSb), 10);
        assert_eq!(b.read(CoreEvent::InstRetired), 0);
    }

    #[test]
    fn delta_is_saturating_elementwise() {
        let mut early: Bank<ImcEvent> = Bank::new();
        let mut late: Bank<ImcEvent> = Bank::new();
        early.add(ImcEvent::CasCountRd, 5);
        late.add(ImcEvent::CasCountRd, 12);
        late.add(ImcEvent::CasCountWr, 3);
        let d = late.delta(&early);
        assert_eq!(d.read(ImcEvent::CasCountRd), 7);
        assert_eq!(d.read(ImcEvent::CasCountWr), 3);
        // Reversed order saturates rather than wrapping.
        let d2 = early.delta(&late);
        assert_eq!(d2.read(ImcEvent::CasCountRd), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut b: Bank<ImcEvent> = Bank::new();
        b.add(ImcEvent::RpqInserts, 42);
        b.reset();
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a: Bank<ImcEvent> = Bank::new();
        let mut b: Bank<ImcEvent> = Bank::new();
        a.add(ImcEvent::RpqInserts, 1);
        b.add(ImcEvent::RpqInserts, 2);
        b.add(ImcEvent::WpqInserts, 7);
        a.merge(&b);
        assert_eq!(a.read(ImcEvent::RpqInserts), 3);
        assert_eq!(a.read(ImcEvent::WpqInserts), 7);
    }
}
