//! # pmu — a software Performance Monitoring Unit
//!
//! This crate is the telemetry substrate for the PathFinder CXL.mem profiler
//! (SIGCOMM 2025). On real hardware PathFinder programs the core, CHA/LLC,
//! uncore (IMC + M2PCIe) and CXL-device PMUs through Linux `perf`; here the
//! same counter taxonomy is implemented in software so that a simulated
//! server (the `simarch` crate) can expose *bit-identical counter semantics*
//! to the profiler.
//!
//! The counter names follow the paper's Tables 1–4 exactly
//! (`resource_stalls.sb`, `mem_load_retired.l1_fb_hit`,
//! `unc_cha_tor_inserts.ia_drd.*`, `unc_m2p_rxc_cycles_ne`,
//! `unc_cxlcm_rxc_pack_buf_full.mem_req`, …) including the per-destination
//! sub-events ("9 scenarios" of `ocr.demand_data_rd`, the 6 RFO TOR
//! scenarios, the 5 write-back coherence transitions).
//!
//! ## Layout
//!
//! * [`event`] — dense, typed event enumerations for every PMU.
//! * [`bank`] — a fixed-size counter file ([`bank::Bank`]) per module.
//! * [`system`] — the whole-machine counter file ([`system::SystemPmu`]) and
//!   snapshot/delta machinery used by the profiler at epoch boundaries.
//! * [`sampling`] — overflow-threshold sampling mode (§3.1 of the paper).
//! * [`registry`] — a human-readable registry of every event with its
//!   description, used by the CLI to enumerate capabilities.

pub mod bank;
pub mod event;
pub mod registry;
pub mod sampling;
pub mod system;

pub use bank::Bank;
pub use event::{
    ChaEvent, CoreEvent, CxlEvent, Event, IaScen, ImcEvent, L3HitSrc, L3MissSrc, M2pEvent,
    PathClass, PoolEvent, RespScenario, SwitchEvent, TorDrdScen, TorRfoScen, WbScen,
};
pub use system::{SystemDelta, SystemPmu, SystemSnapshot};
