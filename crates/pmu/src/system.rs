//! Whole-machine counter files and snapshot machinery.
//!
//! PathFinder "takes a snapshot of all PMUs at the end of every OS
//! scheduling epoch" (§4.2). [`SystemPmu`] is the live counter state the
//! simulator increments; [`SystemSnapshot`] is an O(#counters) copy taken at
//! an epoch boundary; [`SystemDelta`] is the difference between two
//! snapshots — the digest the four PathFinder techniques consume.

use crate::bank::Bank;
use crate::event::{
    ChaEvent, CoreEvent, CxlEvent, Event, ImcEvent, M2pEvent, PoolEvent, SwitchEvent,
};

/// The live PMU state for a whole machine.
///
/// Topology: `cores[c]` per logical core; `chas[s]` one aggregated CHA bank
/// per socket (real machines expose one per slice; the simulator also keeps
/// per-slice banks and merges them — see `simarch::cha`); `imcs[ch]` per
/// local DRAM pseudo-channel; `m2ps[e]` per CXL endpoint (FlexBus RC);
/// `cxls[d]` per CXL device.
#[derive(Clone, Debug)]
pub struct SystemPmu {
    pub cores: Vec<Bank<CoreEvent>>,
    pub chas: Vec<Bank<ChaEvent>>,
    pub imcs: Vec<Bank<ImcEvent>>,
    pub m2ps: Vec<Bank<M2pEvent>>,
    pub cxls: Vec<Bank<CxlEvent>>,
    /// CXL switch banks, one per upstream port. Empty for a single-host
    /// machine PMU — only the fabric-level PMU (`SystemPmu::fabric`)
    /// populates these, so every existing machine snapshot stays
    /// byte-identical.
    pub switches: Vec<Bank<SwitchEvent>>,
    /// Pooled Type-3 device banks, one per tenant host. Empty for a
    /// single-host machine PMU.
    pub pools: Vec<Bank<PoolEvent>>,
}

impl SystemPmu {
    /// Build a zeroed PMU state for the given topology.
    pub fn new(
        n_cores: usize,
        n_sockets: usize,
        n_channels: usize,
        n_endpoints: usize,
        n_devices: usize,
    ) -> Self {
        SystemPmu {
            cores: (0..n_cores).map(|_| Bank::new()).collect(),
            chas: (0..n_sockets).map(|_| Bank::new()).collect(),
            imcs: (0..n_channels).map(|_| Bank::new()).collect(),
            m2ps: (0..n_endpoints).map(|_| Bank::new()).collect(),
            cxls: (0..n_devices).map(|_| Bank::new()).collect(),
            switches: Vec::new(),
            pools: Vec::new(),
        }
    }

    /// Build the fabric-level counter file: switch banks for `n_ports`
    /// upstream ports and pooled-device banks for the same number of
    /// tenant hosts (one port per host), no machine-side banks.
    pub fn fabric(n_ports: usize) -> Self {
        SystemPmu {
            cores: Vec::new(),
            chas: Vec::new(),
            imcs: Vec::new(),
            m2ps: Vec::new(),
            cxls: Vec::new(),
            switches: (0..n_ports).map(|_| Bank::new()).collect(),
            pools: (0..n_ports).map(|_| Bank::new()).collect(),
        }
    }

    /// Capture the current counter values.
    pub fn snapshot(&self, cycle: u64) -> SystemSnapshot {
        SystemSnapshot {
            cycle,
            pmu: self.clone(),
        }
    }

    /// Overwrite this PMU state with a copy of `other`, reusing every
    /// existing bank allocation when the topologies match (the snapshot-
    /// pooling fast path; see PERFORMANCE.md). Falls back to a plain clone
    /// per bank list on a topology mismatch.
    pub fn copy_from(&mut self, other: &SystemPmu) {
        fn copy_banks<E: crate::event::Event>(dst: &mut Vec<Bank<E>>, src: &[Bank<E>]) {
            if dst.len() == src.len() {
                for (d, s) in dst.iter_mut().zip(src.iter()) {
                    d.copy_from(s);
                }
            } else {
                *dst = src.to_vec();
            }
        }
        copy_banks(&mut self.cores, &other.cores);
        copy_banks(&mut self.chas, &other.chas);
        copy_banks(&mut self.imcs, &other.imcs);
        copy_banks(&mut self.m2ps, &other.m2ps);
        copy_banks(&mut self.cxls, &other.cxls);
        copy_banks(&mut self.switches, &other.switches);
        copy_banks(&mut self.pools, &other.pools);
    }

    /// Reset every counter in every bank.
    pub fn reset(&mut self) {
        self.cores.iter_mut().for_each(Bank::reset);
        self.chas.iter_mut().for_each(Bank::reset);
        self.imcs.iter_mut().for_each(Bank::reset);
        self.m2ps.iter_mut().for_each(Bank::reset);
        self.cxls.iter_mut().for_each(Bank::reset);
        self.switches.iter_mut().for_each(Bank::reset);
        self.pools.iter_mut().for_each(Bank::reset);
    }

    /// Approximate resident size of the counter state in bytes. Used by the
    /// overhead accounting of §5.9.
    pub fn footprint_bytes(&self) -> usize {
        let per = |n_banks: usize, card: usize| n_banks * card * core::mem::size_of::<u64>();
        per(self.cores.len(), crate::event::CoreEvent::CARD)
            + per(self.chas.len(), crate::event::ChaEvent::CARD)
            + per(self.imcs.len(), crate::event::ImcEvent::CARD)
            + per(self.m2ps.len(), crate::event::M2pEvent::CARD)
            + per(self.cxls.len(), crate::event::CxlEvent::CARD)
            + per(self.switches.len(), crate::event::SwitchEvent::CARD)
            + per(self.pools.len(), crate::event::PoolEvent::CARD)
    }
}

/// A point-in-time copy of all counters, tagged with the machine cycle.
#[derive(Clone, Debug)]
pub struct SystemSnapshot {
    /// The machine cycle at which the snapshot was taken.
    pub cycle: u64,
    /// The counter values.
    pub pmu: SystemPmu,
}

impl SystemSnapshot {
    /// Resident bytes of the retained snapshot (§5.9 overhead accounting):
    /// the counter copy plus the struct header.
    pub fn footprint_bytes(&self) -> usize {
        core::mem::size_of::<SystemSnapshot>() + self.pmu.footprint_bytes()
    }

    /// Overwrite this snapshot in place from the live counter state,
    /// reusing its allocations (see [`SystemPmu::copy_from`]).
    pub fn copy_from(&mut self, pmu: &SystemPmu, cycle: u64) {
        self.cycle = cycle;
        self.pmu.copy_from(pmu);
    }

    /// The per-epoch digest: `self - earlier` for every counter.
    ///
    /// Panics if the two snapshots come from machines with different
    /// topologies (different bank counts).
    pub fn delta(&self, earlier: &SystemSnapshot) -> SystemDelta {
        assert_eq!(
            self.pmu.cores.len(),
            earlier.pmu.cores.len(),
            "topology mismatch"
        );
        assert_eq!(
            self.pmu.chas.len(),
            earlier.pmu.chas.len(),
            "topology mismatch"
        );
        assert_eq!(
            self.pmu.imcs.len(),
            earlier.pmu.imcs.len(),
            "topology mismatch"
        );
        assert_eq!(
            self.pmu.m2ps.len(),
            earlier.pmu.m2ps.len(),
            "topology mismatch"
        );
        assert_eq!(
            self.pmu.cxls.len(),
            earlier.pmu.cxls.len(),
            "topology mismatch"
        );
        assert_eq!(
            self.pmu.switches.len(),
            earlier.pmu.switches.len(),
            "topology mismatch"
        );
        assert_eq!(
            self.pmu.pools.len(),
            earlier.pmu.pools.len(),
            "topology mismatch"
        );
        fn zip<E: crate::event::Event>(a: &[Bank<E>], b: &[Bank<E>]) -> Vec<Bank<E>> {
            a.iter()
                .zip(b.iter())
                .map(|(now, then)| now.delta(then))
                .collect()
        }
        SystemDelta {
            start_cycle: earlier.cycle,
            end_cycle: self.cycle,
            pmu: SystemPmu {
                cores: zip(&self.pmu.cores, &earlier.pmu.cores),
                chas: zip(&self.pmu.chas, &earlier.pmu.chas),
                imcs: zip(&self.pmu.imcs, &earlier.pmu.imcs),
                m2ps: zip(&self.pmu.m2ps, &earlier.pmu.m2ps),
                cxls: zip(&self.pmu.cxls, &earlier.pmu.cxls),
                switches: zip(&self.pmu.switches, &earlier.pmu.switches),
                pools: zip(&self.pmu.pools, &earlier.pmu.pools),
            },
        }
    }
}

/// Counter activity over one profiling epoch (`[start_cycle, end_cycle)`).
#[derive(Clone, Debug)]
pub struct SystemDelta {
    pub start_cycle: u64,
    pub end_cycle: u64,
    /// Per-epoch counter increments, bank-shaped like the live PMU.
    pub pmu: SystemPmu,
}

impl SystemDelta {
    /// Epoch length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// Sum of a core event across all cores.
    pub fn core_sum(&self, ev: CoreEvent) -> u64 {
        self.pmu.cores.iter().map(|b| b.read(ev)).sum()
    }

    /// Sum of a CHA event across all sockets.
    pub fn cha_sum(&self, ev: ChaEvent) -> u64 {
        self.pmu.chas.iter().map(|b| b.read(ev)).sum()
    }

    /// Sum of an IMC event across all channels.
    pub fn imc_sum(&self, ev: ImcEvent) -> u64 {
        self.pmu.imcs.iter().map(|b| b.read(ev)).sum()
    }

    /// Sum of an M2PCIe event across all endpoints.
    pub fn m2p_sum(&self, ev: M2pEvent) -> u64 {
        self.pmu.m2ps.iter().map(|b| b.read(ev)).sum()
    }

    /// Sum of a CXL-device event across all devices.
    pub fn cxl_sum(&self, ev: CxlEvent) -> u64 {
        self.pmu.cxls.iter().map(|b| b.read(ev)).sum()
    }

    /// Sum of a switch event across all upstream ports.
    pub fn switch_sum(&self, ev: SwitchEvent) -> u64 {
        self.pmu.switches.iter().map(|b| b.read(ev)).sum()
    }

    /// Sum of a pooled-device event across all tenant hosts.
    pub fn pool_sum(&self, ev: PoolEvent) -> u64 {
        self.pmu.pools.iter().map(|b| b.read(ev)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CoreEvent, CxlEvent};

    fn tiny() -> SystemPmu {
        SystemPmu::new(2, 1, 2, 1, 1)
    }

    #[test]
    fn snapshot_delta_isolates_epoch_activity() {
        let mut pmu = tiny();
        pmu.cores[0].add(CoreEvent::InstRetired, 100);
        let s1 = pmu.snapshot(1000);
        pmu.cores[0].add(CoreEvent::InstRetired, 50);
        pmu.cores[1].add(CoreEvent::InstRetired, 7);
        pmu.cxls[0].add(CxlEvent::RxcPackBufInsertsMemReq, 3);
        let s2 = pmu.snapshot(2000);
        let d = s2.delta(&s1);
        assert_eq!(d.cycles(), 1000);
        assert_eq!(d.pmu.cores[0].read(CoreEvent::InstRetired), 50);
        assert_eq!(d.pmu.cores[1].read(CoreEvent::InstRetired), 7);
        assert_eq!(d.core_sum(CoreEvent::InstRetired), 57);
        assert_eq!(d.cxl_sum(CxlEvent::RxcPackBufInsertsMemReq), 3);
    }

    #[test]
    #[should_panic(expected = "topology mismatch")]
    fn delta_rejects_mismatched_topologies() {
        let a = tiny().snapshot(0);
        let b = SystemPmu::new(4, 1, 2, 1, 1).snapshot(1);
        let _ = b.delta(&a);
    }

    #[test]
    fn footprint_is_nonzero_and_reasonable() {
        let pmu = SystemPmu::new(32, 2, 8, 2, 2);
        let fp = pmu.footprint_bytes();
        assert!(fp > 0);
        // The paper reports a ~38MB total footprint for PathFinder; the raw
        // counter state itself must be far below that.
        assert!(fp < 4 << 20, "counter state unexpectedly large: {fp}");
    }
}
