//! Overflow-threshold sampling mode (§3.1, mode b).
//!
//! A real PMU counter can be armed with a threshold; when the count crosses
//! it, the PMU fires an overflow interrupt and re-arms. PathFinder mostly
//! uses continuous counting, but sampling is part of the PMU capability
//! surface the paper describes, and the profiler's load-latency events
//! (`mem_trans_retired.*`) are sampling-based on real silicon.

/// A sampling counter: counts like a free-running counter, but reports how
/// many times it crossed the programmed period since the last read.
#[derive(Clone, Debug)]
pub struct SamplingCounter {
    period: u64,
    value: u64,
    overflows: u64,
}

impl SamplingCounter {
    /// Create a counter firing every `period` events. `period` must be > 0.
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "sampling period must be positive");
        SamplingCounter {
            period,
            value: 0,
            overflows: 0,
        }
    }

    /// Count `n` events; returns the number of overflow interrupts this
    /// increment produced (0 almost always, >1 for bursts larger than the
    /// period).
    pub fn count(&mut self, n: u64) -> u64 {
        self.value += n;
        let fired = self.value / self.period;
        self.value %= self.period;
        self.overflows += fired;
        fired
    }

    /// Total overflows since creation or the last [`Self::reset`].
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Residual count below the next threshold.
    pub fn residual(&self) -> u64 {
        self.value
    }

    /// Estimated total events observed (overflows × period + residual).
    pub fn estimate(&self) -> u64 {
        self.overflows * self.period + self.value
    }

    /// The programmed period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Reset value and overflow count, keeping the period.
    pub fn reset(&mut self) {
        self.value = 0;
        self.overflows = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_per_period() {
        let mut c = SamplingCounter::new(10);
        assert_eq!(c.count(9), 0);
        assert_eq!(c.count(1), 1);
        assert_eq!(c.count(25), 2);
        assert_eq!(c.overflows(), 3);
        assert_eq!(c.residual(), 5);
        assert_eq!(c.estimate(), 35);
    }

    #[test]
    fn burst_larger_than_period_fires_multiple() {
        let mut c = SamplingCounter::new(4);
        assert_eq!(c.count(17), 4);
        assert_eq!(c.residual(), 1);
    }

    #[test]
    fn reset_keeps_period() {
        let mut c = SamplingCounter::new(7);
        c.count(20);
        c.reset();
        assert_eq!(c.overflows(), 0);
        assert_eq!(c.residual(), 0);
        assert_eq!(c.period(), 7);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_is_rejected() {
        let _ = SamplingCounter::new(0);
    }
}
