//! Prometheus text exposition: name mangling, a small writer, and a
//! validator.
//!
//! PathFinder metric names are dotted (`subsystem.phase`, e.g.
//! `tsdb.points`); Prometheus requires `[a-zA-Z_:][a-zA-Z0-9_:]*`. The
//! mangling contract (documented in FLEET.md) is:
//!
//! * prefix every exported family with `pathfinder_`;
//! * map every non-alphanumeric character to `_`;
//! * lowercase the result.
//!
//! So `tsdb.resident_bytes` becomes `pathfinder_tsdb_resident_bytes` and
//! `fleet.inst_retired.any` becomes `pathfinder_fleet_inst_retired_any`.
//!
//! [`PromText`] renders counters, gauges and summaries (obs histograms map
//! to Prometheus summaries with `quantile` labels plus `_sum`/`_count`),
//! emitting each family's `# TYPE` line exactly once, before its first
//! sample. [`validate`] checks the inverse: every sample belongs to a typed
//! family, every name is in mangled form, and no (name, label-set) pair
//! repeats. `obs_validate --prom` drives it from the command line so
//! `scripts/tier1.sh` can gate the fleetd smoke run on a well-formed
//! scrape.
//!
//! Like the rest of this crate the module is a pflint `panic-freedom`
//! root: no indexing, no slicing, no unchecked division.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::json::fmt_f64;
use crate::metrics::HistSnapshot;

/// Mangle a dotted PathFinder metric name into Prometheus form.
pub fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 11);
    out.push_str("pathfinder_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// Does `name` have the shape the mangler produces (`pathfinder_` prefix,
/// then lowercase alphanumerics and underscores only)?
pub fn is_mangled(name: &str) -> bool {
    match name.strip_prefix("pathfinder_") {
        Some(rest) => {
            !rest.is_empty()
                && rest
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        }
        None => false,
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Incremental Prometheus text writer. Families are typed once, on first
/// use; callers pass raw dotted names and the writer mangles them.
#[derive(Default)]
pub struct PromText {
    out: String,
    typed: BTreeSet<String>,
}

impl PromText {
    pub fn new() -> PromText {
        PromText::default()
    }

    fn family(&mut self, mangled: &str, kind: &str) {
        if self.typed.insert(mangled.to_string()) {
            let _ = writeln!(self.out, "# TYPE {mangled} {kind}");
        }
    }

    fn sample(&mut self, mangled: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(mangled);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Emit a counter sample (monotone, u64).
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let m = mangle(name);
        self.family(&m, "counter");
        self.sample(&m, labels, &value.to_string());
    }

    /// Emit a gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let m = mangle(name);
        self.family(&m, "gauge");
        self.sample(&m, labels, &fmt_f64(value));
    }

    /// Emit an obs histogram as a Prometheus summary: p50/p95/p99 as
    /// `quantile` samples, plus `_sum` (reconstructed from the mean) and
    /// `_count`.
    pub fn summary(&mut self, name: &str, labels: &[(&str, &str)], h: &HistSnapshot) {
        let m = mangle(name);
        self.family(&m, "summary");
        let mut with_q: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + 1);
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            with_q.clear();
            with_q.extend_from_slice(labels);
            with_q.push(("quantile", q));
            self.sample(&m, &with_q, &v.to_string());
        }
        let sum = h.mean * h.count as f64;
        self.sample(&format!("{m}_sum"), labels, &fmt_f64(sum));
        self.sample(&format!("{m}_count"), labels, &h.count.to_string());
    }

    /// Render every metric currently in the obs registry (counters,
    /// gauges, histograms-as-summaries) plus the span-buffer drop counter,
    /// which lives outside the registry.
    pub fn render_registry(&mut self) {
        let snap = crate::metrics::snapshot();
        for (name, v) in &snap.counters {
            self.counter(name, &[], *v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(name, &[], *v);
        }
        for (name, h) in &snap.hists {
            self.summary(name, &[], h);
        }
        self.counter("obs.dropped_events", &[], crate::span::dropped_events());
    }

    /// Finish and take the rendered exposition text.
    pub fn into_string(self) -> String {
        self.out
    }
}

/// Summary statistics from a successful [`validate`] pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PromStats {
    /// Distinct `# TYPE`-declared families.
    pub families: usize,
    /// Total samples.
    pub samples: usize,
}

/// Parse a Prometheus label set body (the text between `{` and `}`) into
/// `(name, unescaped value)` pairs.
///
/// Grammar enforced: comma-separated `name="value"` pairs; label names
/// `[a-zA-Z_][a-zA-Z0-9_]*`; inside a value only `\\`, `\"` and `\n` are
/// legal escapes and a bare `"` always terminates it. Anything else —
/// stray bytes between pairs, an unterminated value, an illegal escape —
/// is exactly the shape a hostile label value would need to smuggle a
/// fake sample past a scraper, and is rejected.
fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    if s.is_empty() {
        return Ok(out);
    }
    let mut it = s.chars().peekable();
    loop {
        let mut name = String::new();
        while let Some(&c) = it.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                name.push(c);
                it.next();
            } else {
                break;
            }
        }
        if name.is_empty() || name.starts_with(|c: char| c.is_ascii_digit()) {
            return Err(format!(
                "bad label name before `{}`",
                it.collect::<String>()
            ));
        }
        if it.next() != Some('=') || it.next() != Some('"') {
            return Err(format!("label `{name}` is not followed by =\"...\""));
        }
        let mut value = String::new();
        loop {
            match it.next() {
                None => return Err(format!("label `{name}` has an unterminated value")),
                Some('"') => break,
                Some('\\') => match it.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => {
                        return Err(format!(
                            "label `{name}` uses illegal escape `\\{}`",
                            other.map(String::from).unwrap_or_default()
                        ))
                    }
                },
                Some(c) => value.push(c),
            }
        }
        out.push((name, value));
        match it.next() {
            None => break,
            Some(',') => continue,
            Some(c) => return Err(format!("unexpected `{c}` after a label pair")),
        }
    }
    Ok(out)
}

/// Resolve a sample name to its family: `_sum`/`_count`/`_bucket`
/// suffixes fold into a preceding summary or histogram family.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_count", "_sum", "_bucket"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if let Some(kind) = types.get(base) {
                if kind == "summary" || kind == "histogram" {
                    return base;
                }
            }
        }
    }
    name
}

/// Validate Prometheus text exposition:
///
/// * every `# TYPE` line is well-formed, names a known metric kind, and
///   appears at most once per family;
/// * every sample name (and family name) is in `pathfinder_` mangled form;
/// * every sample is preceded by its family's `# TYPE` line;
/// * every label set parses as `name="value"` pairs with only the three
///   legal escapes (`\\`, `\"`, `\n`) — see [`parse_labels`];
/// * no (name, label-set) pair appears twice, where identity is the
///   *parsed* label set (label order does not make two samples distinct);
/// * every value parses as a float;
/// * every family in `required` is present.
///
/// Returns family/sample counts on success, a one-line diagnosis on the
/// first failure.
pub fn validate(text: &str, required: &[&str]) -> Result<PromStats, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut samples = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let n = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (fam, kind) = match (it.next(), it.next()) {
                (Some(f), Some(k)) => (f, k),
                _ => return Err(format!("line {n}: malformed TYPE line `{line}`")),
            };
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("line {n}: unknown metric type `{kind}`"));
            }
            if !is_mangled(fam) {
                return Err(format!(
                    "line {n}: family `{fam}` is not in pathfinder_ mangled form"
                ));
            }
            if types.insert(fam.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {n}: duplicate TYPE line for `{fam}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return Err(format!("line {n}: malformed sample `{line}`")),
        };
        if value.parse::<f64>().is_err() {
            return Err(format!("line {n}: value `{value}` is not a number"));
        }
        let (name, labels) = match series.split_once('{') {
            Some((nm, rest)) => match rest.strip_suffix('}') {
                Some(lbl) => (nm, lbl),
                None => return Err(format!("line {n}: unterminated label set `{series}`")),
            },
            None => (series, ""),
        };
        if !is_mangled(name) {
            return Err(format!(
                "line {n}: sample `{name}` is not in pathfinder_ mangled form"
            ));
        }
        if !types.contains_key(family_of(name, &types)) {
            return Err(format!(
                "line {n}: sample `{name}` has no preceding # TYPE line"
            ));
        }
        let mut pairs = match parse_labels(labels) {
            Ok(p) => p,
            Err(e) => return Err(format!("line {n}: `{series}`: {e}")),
        };
        // Identity is the parsed set: sort, then re-escape each value so
        // the key stays unambiguous whatever bytes the values contain.
        pairs.sort();
        let key = pairs.iter().fold(name.to_string(), |mut k, (lk, lv)| {
            let _ = write!(k, "\u{0}{lk}\u{0}{}", escape_label(lv));
            k
        });
        if !seen.insert(key) {
            return Err(format!("line {n}: duplicate sample `{series}`"));
        }
        samples += 1;
    }
    for r in required {
        if !types.contains_key(*r) {
            return Err(format!("required metric family `{r}` missing"));
        }
    }
    Ok(PromStats {
        families: types.len(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mangling_maps_dots_and_case() {
        assert_eq!(
            mangle("tsdb.resident_bytes"),
            "pathfinder_tsdb_resident_bytes"
        );
        assert_eq!(
            mangle("fleet.inst_retired.any"),
            "pathfinder_fleet_inst_retired_any"
        );
        assert_eq!(mangle("A-B c"), "pathfinder_a_b_c");
        assert!(is_mangled("pathfinder_tsdb_points"));
        assert!(!is_mangled("tsdb_points"));
        assert!(!is_mangled("pathfinder_Bad"));
        assert!(!is_mangled("pathfinder_"));
    }

    #[test]
    fn writer_output_validates() {
        let mut w = PromText::new();
        w.counter("fleetd.rounds", &[], 3);
        w.counter("fleetd.rounds", &[("shard", "1")], 2);
        w.gauge("tsdb.resident_bytes", &[], 4096.0);
        let h = HistSnapshot {
            count: 10,
            min: 1,
            max: 100,
            mean: 40.0,
            p50: 30,
            p95: 90,
            p99: 99,
        };
        w.summary("fleetd.scrape_ns", &[], &h);
        let text = w.into_string();
        assert_eq!(
            text.matches("# TYPE pathfinder_fleetd_rounds counter")
                .count(),
            1,
            "TYPE emitted once per family:\n{text}"
        );
        let stats = validate(
            &text,
            &["pathfinder_fleetd_rounds", "pathfinder_fleetd_scrape_ns"],
        )
        .expect("writer output validates");
        assert_eq!(stats.families, 3);
        assert_eq!(stats.samples, 8);
    }

    #[test]
    fn validate_rejects_duplicates_untyped_and_unmangled() {
        let dup = "# TYPE pathfinder_x counter\npathfinder_x 1\npathfinder_x 2\n";
        assert!(validate(dup, &[]).unwrap_err().contains("duplicate sample"));

        let untyped = "pathfinder_y 1\n";
        assert!(validate(untyped, &[])
            .unwrap_err()
            .contains("no preceding # TYPE"));

        let unmangled = "# TYPE pathfinder_z counter\nraw.name 1\n";
        assert!(validate(unmangled, &[])
            .unwrap_err()
            .contains("mangled form"));

        let ok = "# TYPE pathfinder_x counter\npathfinder_x 1\n";
        assert!(validate(ok, &["pathfinder_missing"])
            .unwrap_err()
            .contains("missing"));
        assert!(validate(ok, &["pathfinder_x"]).is_ok());
    }

    #[test]
    fn hostile_label_values_round_trip_through_render_and_validate() {
        // The classic exposition-injection payloads: embedded quotes,
        // backslashes, newlines, and a value that *spells* a second
        // sample. Rendered through the writer they must come out escaped,
        // and the validator must accept the result as exactly one sample
        // per (name, label-set).
        let hostile = [
            "he said \"hi\"",
            "back\\slash",
            "multi\nline",
            "\"} pathfinder_fake 1\n# TYPE pathfinder_fake counter",
        ];
        let mut w = PromText::new();
        for (i, v) in hostile.iter().enumerate() {
            let idx = i.to_string();
            w.counter("fleetd.rounds", &[("idx", &idx), ("evil", v)], 1);
        }
        let text = w.into_string();
        let stats = validate(&text, &["pathfinder_fleetd_rounds"])
            .expect("escaped hostile labels must validate");
        assert_eq!(stats.families, 1, "no injected family:\n{text}");
        assert_eq!(stats.samples, hostile.len());
    }

    #[test]
    fn validate_parses_label_sets_strictly() {
        let head = "# TYPE pathfinder_x counter\n";
        let bad = [
            // A raw quote ends the value early and leaves garbage behind.
            "pathfinder_x{k=\"a\"b\"} 1\n",
            // Only \\ \" \n are legal escapes.
            "pathfinder_x{k=\"a\\t\"} 1\n",
            // Unterminated value.
            "pathfinder_x{k=\"a} 1\n",
            // Label names cannot start with a digit or be empty.
            "pathfinder_x{1k=\"a\"} 1\n",
            "pathfinder_x{=\"a\"} 1\n",
            // Unquoted values and stray separators.
            "pathfinder_x{k=a} 1\n",
            "pathfinder_x{k=\"a\",} 1\n",
            "pathfinder_x{k=\"a\";j=\"b\"} 1\n",
        ];
        for b in bad {
            let text = format!("{head}{b}");
            assert!(
                validate(&text, &[]).is_err(),
                "must reject label set in {b:?}"
            );
        }
        // Label order is not identity: the same pairs reordered are a
        // duplicate sample, not a new one.
        let dup =
            format!("{head}pathfinder_x{{a=\"1\",b=\"2\"}} 1\npathfinder_x{{b=\"2\",a=\"1\"}} 2\n");
        assert!(validate(&dup, &[])
            .unwrap_err()
            .contains("duplicate sample"));
        // Escapes that unescape to the same bytes also collide...
        let esc = format!("{head}pathfinder_x{{k=\"a\\\\n\"}} 1\npathfinder_x{{k=\"a\\\\n\"}} 2\n");
        assert!(validate(&esc, &[]).unwrap_err().contains("duplicate"));
        // ...but a literal backslash-n and a real newline stay distinct.
        let distinct =
            format!("{head}pathfinder_x{{k=\"a\\\\n\"}} 1\npathfinder_x{{k=\"a\\n\"}} 2\n");
        assert_eq!(
            validate(&distinct, &[]).expect("distinct samples").samples,
            2
        );
    }

    #[test]
    fn summary_suffixes_fold_into_family() {
        let text = "# TYPE pathfinder_s summary\n\
                    pathfinder_s{quantile=\"0.5\"} 1\n\
                    pathfinder_s_sum 2\n\
                    pathfinder_s_count 2\n";
        let stats = validate(text, &["pathfinder_s"]).expect("summary validates");
        assert_eq!(stats.families, 1);
        assert_eq!(stats.samples, 3);
    }
}
