//! A minimal JSON tree: enough to validate this crate's own exports (and
//! any other small artefact) without external dependencies. Numbers are
//! `f64`; objects preserve insertion order.

use std::fmt;

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub at: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        let rest = self.bytes.get(self.pos..).unwrap_or_default();
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar (length from the lead byte).
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let slice = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("bad utf8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("bad utf8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        self.bytes
            .get(start..self.pos)
            .and_then(|raw| std::str::from_utf8(raw).ok())
            .and_then(|text| text.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Escape a string for embedding in a JSON document (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as JSON: finite values print minimally but round-trip;
/// non-finite values (not representable in JSON) become `null`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let short = format!("{v}");
        if short.parse::<f64>() == Ok(v) {
            short
        } else {
            format!("{v:e}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, {"b": "x\ny"}], "t": true, "n": null}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn fmt_f64_round_trips() {
        for v in [0.0, 1.0, -2.5, 1e-9, 123456789.125, 0.1 + 0.2] {
            assert_eq!(fmt_f64(v).parse::<f64>().unwrap(), v);
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(3.0), "3");
    }
}
