//! # obs — self-observability for the PathFinder pipeline
//!
//! The paper's §5.9 claims PathFinder itself is lightweight (1.3% CPU,
//! 38 MB). Verifying that claim — and finding the hot phases of
//! `Machine::run_epoch`, the four techniques, and `tsdb` ingest — needs
//! telemetry *about the profiler*, kept strictly apart from the telemetry
//! the profiler produces about the machine. This crate is that layer:
//!
//! * [`span`] — RAII phase tracing: `let _s = obs::span!("epoch.machine");`
//!   records nested wall time into a process-wide, thread-safe recorder.
//! * [`metrics`] — named counters, gauges, and fixed-bucket histograms
//!   (p50/p95/p99) for profiler-internal quantities.
//! * [`export`] — human-readable phase tables, Chrome trace-event JSON
//!   (loadable in `chrome://tracing` / Perfetto), and a machine-readable
//!   timings JSON combining phases and metrics.
//! * [`json`] — a minimal JSON value parser so exported artefacts can be
//!   validated without external dependencies.
//!
//! ## Determinism contract
//!
//! Observation never feeds model state or report ordering: every API is
//! read-only with respect to the simulation, and the whole layer is a no-op
//! until [`enable`] is called. When disabled, `span!` takes no timestamp and
//! metric updates return before touching any lock, so model runs with obs
//! off and on are byte-identical (enforced by `tests/obs.rs`). The only
//! wall-clock read in the workspace's model crates lives behind the single
//! choke point in [`clock`], verified by `pflint`'s `obs-choke-point` rule
//! (see STATIC_ANALYSIS.md).
//!
//! Naming scheme (see OBSERVABILITY.md): `epoch.*` for machine/profiler
//! epoch phases, `technique.*` for the four PathFinder techniques,
//! `tsdb.*` for the materializer's store.

use std::sync::atomic::{AtomicBool, Ordering};

pub mod cli;
pub mod clock;
pub mod export;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod span;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the observability layer on. Spans and metrics recorded before this
/// call are lost (they were never taken).
pub fn enable() {
    // Pin the clock origin first so the earliest span gets ts >= 0.
    clock::origin_ns();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the layer off again: subsequent spans/metrics are no-ops. Already
/// recorded data stays available for export.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Is recording currently enabled? This is the zero-cost gate every
/// recording call checks first (one relaxed atomic load).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Discard all recorded spans and metrics (the enabled flag is untouched).
pub fn reset() {
    span::reset();
    metrics::reset();
}

/// Open a phase span. Expression form: bind the guard to keep the span
/// alive for the scope, or call [`span::SpanGuard::finish`] to close it
/// early and read the measured duration.
///
/// ```
/// obs::enable();
/// {
///     let _s = obs::span!("epoch.machine");
///     // ... the phase ...
/// }
/// assert!(obs::span::phases().iter().any(|p| p.name == "epoch.machine"));
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

/// Unit tests toggling the global enabled flag serialise on this lock so
/// the parallel test harness cannot interleave enable/disable.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn disabled_layer_records_nothing() {
        let _lock = crate::test_lock();
        super::disable();
        super::reset();
        {
            let _s = crate::span!("test.nothing");
        }
        crate::metrics::counter_add("test.nothing", 5);
        assert_eq!(crate::span::total_ns("test.nothing"), 0);
        assert_eq!(crate::metrics::counter_value("test.nothing"), 0);
    }
}
