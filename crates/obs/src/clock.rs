//! The workspace's single wall-clock choke point.
//!
//! Every simulator/profiler crate is forbidden from reading wall time
//! directly (pflint's `wall-clock` rule); the one sanctioned read lives
//! here, and pflint's `obs-choke-point` rule verifies that `Instant` never
//! appears anywhere else in this crate either. Span timestamps are
//! nanoseconds since the process-wide origin, which is pinned on the first
//! read (normally by [`crate::enable`]).

use std::sync::OnceLock;
// The sanctioned wall-clock type; confined to this module.
use std::time::Instant; // pflint::allow(wall-clock)

static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the pinned origin. The first call pins the
/// origin and returns 0.
pub fn now_ns() -> u64 {
    let origin = ORIGIN.get_or_init(Instant::now); // pflint::allow(wall-clock)
    origin.elapsed().as_nanos() as u64
}

/// Pin the origin (idempotent) and return 0ns. Split out so [`crate::enable`]
/// can pin before the first span opens.
pub fn origin_ns() -> u64 {
    now_ns();
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
