//! Shared CLI glue for the observability flags.
//!
//! Every figure binary and the `pathfinder` CLI accept the same three
//! flags:
//!
//! * `--timings` — print the human-readable phase-timing table after the
//!   run.
//! * `--timings-json <path>` — write the `pathfinder-obs-v1` timings JSON
//!   (see [`crate::export::timings_json`]).
//! * `--trace-json <path>` — write a Chrome trace-event file loadable in
//!   `chrome://tracing` / Perfetto.
//!
//! Any of the three enables the recorder for the duration of the run;
//! without them no clock is ever read (zero-cost disabled path). Usage:
//!
//! ```no_run
//! let session = obs::cli::Session::from_env();
//! // ... run the workload ...
//! session.finish().unwrap();
//! ```

use std::path::PathBuf;

/// Parsed observability flags.
#[derive(Clone, Debug, Default)]
pub struct ObsArgs {
    /// Print the phase-timing table on stdout after the run.
    pub timings: bool,
    /// Write the timings JSON document here.
    pub timings_json: Option<PathBuf>,
    /// Write the Chrome trace-event JSON here.
    pub trace_json: Option<PathBuf>,
}

impl ObsArgs {
    /// Scan an argv slice for the obs flags, ignoring everything else.
    pub fn parse(args: &[String]) -> ObsArgs {
        ObsArgs::strip(args).0
    }

    /// Scan the process argv (skipping the program name).
    pub fn from_env() -> ObsArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        ObsArgs::parse(&args)
    }

    /// Split an argv slice into the obs flags and the remaining arguments —
    /// for binaries with strict parsers that reject unknown flags.
    pub fn strip(args: &[String]) -> (ObsArgs, Vec<String>) {
        let mut o = ObsArgs::default();
        let mut rest = Vec::new();
        let mut i = 0;
        while let Some(arg) = args.get(i) {
            match arg.as_str() {
                "--timings" => o.timings = true,
                "--timings-json" => {
                    i += 1;
                    o.timings_json = args.get(i).map(PathBuf::from);
                }
                "--trace-json" => {
                    i += 1;
                    o.trace_json = args.get(i).map(PathBuf::from);
                }
                other => rest.push(other.to_string()),
            }
            i += 1;
        }
        (o, rest)
    }

    /// True when any flag asked for observability.
    pub fn requested(&self) -> bool {
        self.timings || self.timings_json.is_some() || self.trace_json.is_some()
    }
}

/// RAII-style session: enables the recorder on construction when any flag
/// was given, and exports the requested artefacts in [`Session::finish`].
pub struct Session {
    args: ObsArgs,
}

impl Session {
    /// Build a session from explicit flags.
    pub fn new(args: ObsArgs) -> Session {
        if args.requested() {
            crate::reset();
            crate::enable();
        }
        Session { args }
    }

    /// Build a session from the process argv.
    pub fn from_env() -> Session {
        Session::new(ObsArgs::from_env())
    }

    /// Export the requested artefacts and disable the recorder. A no-op
    /// when no flag was given.
    pub fn finish(self) -> std::io::Result<()> {
        if !self.args.requested() {
            return Ok(());
        }
        crate::disable();
        if self.args.timings {
            println!("\n{}", crate::export::phase_table());
        }
        if let Some(path) = &self.args.timings_json {
            std::fs::write(path, crate::export::timings_json())?;
            println!("[timings-json] {}", path.display());
        }
        if let Some(path) = &self.args.trace_json {
            std::fs::write(path, crate::export::chrome_trace_json())?;
            println!("[trace-json] {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_picks_up_all_three_flags() {
        let o = ObsArgs::parse(&argv(&[
            "--ops",
            "100",
            "--timings",
            "--timings-json",
            "t.json",
            "--trace-json",
            "trace.json",
        ]));
        assert!(o.timings);
        assert_eq!(
            o.timings_json.as_deref(),
            Some(std::path::Path::new("t.json"))
        );
        assert_eq!(
            o.trace_json.as_deref(),
            Some(std::path::Path::new("trace.json"))
        );
        assert!(o.requested());
    }

    #[test]
    fn strip_preserves_foreign_args_in_order() {
        let (o, rest) = ObsArgs::strip(&argv(&["--policy", "cxl", "--timings", "--ops", "7"]));
        assert!(o.timings);
        assert_eq!(rest, argv(&["--policy", "cxl", "--ops", "7"]));
    }

    #[test]
    fn no_flags_means_not_requested() {
        let o = ObsArgs::parse(&argv(&["--emr"]));
        assert!(!o.requested());
    }
}
