//! Span-based phase tracing: RAII guards record nested wall time into a
//! process-wide recorder.
//!
//! A span is opened with [`crate::span!`] and closed when the guard drops
//! (or explicitly via [`SpanGuard::finish`], which also hands back the
//! measured duration — the profiler's `Overhead` accounting is built on
//! that). Every closed span updates two structures under one lock:
//!
//! * an **aggregate** per span name (count, total, max, a log2 latency
//!   histogram, and the minimum nesting depth observed), feeding the phase
//!   table and timings JSON;
//! * an **event list** (name, thread, start, duration, depth), feeding the
//!   Chrome trace export. The list is capped; overflow increments a
//!   dropped-events counter instead of growing without bound.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::clock;
use crate::metrics::{HistSnapshot, Histogram};

/// Cap on retained trace events (~44 MB at the `SpanEvent` size); beyond
/// it spans still aggregate but no longer appear in the Chrome trace.
pub const EVENT_CAP: usize = 1 << 20;

/// One closed span, as exported to Chrome trace JSON.
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent {
    pub name: &'static str,
    /// Dense per-process thread id (first thread to record = 1).
    pub tid: u64,
    /// Start, nanoseconds since the clock origin.
    pub ts_ns: u64,
    pub dur_ns: u64,
    /// Nesting depth at open (0 = outermost span on its thread).
    pub depth: u32,
}

struct PhaseStat {
    count: u64,
    total_ns: u64,
    max_ns: u64,
    min_depth: u32,
    hist: Histogram,
}

/// Aggregated view of one span name.
#[derive(Clone, Debug)]
pub struct PhaseSnapshot {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
    /// Minimum nesting depth this phase was observed at.
    pub depth: u32,
    pub hist: HistSnapshot,
}

#[derive(Default)]
struct Recorder {
    events: Vec<SpanEvent>,
    dropped: u64,
    agg: BTreeMap<&'static str, PhaseStat>,
}

static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static TID: Cell<u64> = const { Cell::new(0) };
}

fn thread_id() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> R {
    let mut guard = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Recorder::default))
}

struct ActiveSpan {
    name: &'static str,
    start_ns: u64,
    depth: u32,
}

/// The RAII guard returned by [`crate::span!`]. Closing records the span;
/// a guard opened while the layer was disabled records nothing.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::is_enabled() {
            return SpanGuard { active: None };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard {
            active: Some(ActiveSpan {
                name,
                start_ns: clock::now_ns(),
                depth,
            }),
        }
    }

    /// Close the span now and return the measured duration (`None` when the
    /// guard was opened with the layer disabled).
    pub fn finish(mut self) -> Option<Duration> {
        self.close()
    }

    fn close(&mut self) -> Option<Duration> {
        let span = self.active.take()?;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur_ns = clock::now_ns().saturating_sub(span.start_ns);
        let event = SpanEvent {
            name: span.name,
            tid: thread_id(),
            ts_ns: span.start_ns,
            dur_ns,
            depth: span.depth,
        };
        with_recorder(|r| {
            if r.events.len() < EVENT_CAP {
                r.events.push(event);
            } else {
                r.dropped += 1;
            }
            if let Some(s) = r.agg.get_mut(span.name) {
                s.count += 1;
                s.total_ns += dur_ns;
                s.max_ns = s.max_ns.max(dur_ns);
                s.min_depth = s.min_depth.min(span.depth);
                s.hist.record(dur_ns);
            } else {
                let mut hist = Histogram::default();
                hist.record(dur_ns);
                r.agg.insert(
                    span.name,
                    PhaseStat {
                        count: 1,
                        total_ns: dur_ns,
                        max_ns: dur_ns,
                        min_depth: span.depth,
                        hist,
                    },
                );
            }
        });
        Some(Duration::from_nanos(dur_ns))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// Aggregated phases, name-sorted.
pub fn phases() -> Vec<PhaseSnapshot> {
    with_recorder(|r| {
        r.agg
            .iter()
            .map(|(&name, s)| PhaseSnapshot {
                name: name.to_string(),
                count: s.count,
                total_ns: s.total_ns,
                max_ns: s.max_ns,
                depth: s.min_depth,
                hist: s.hist.snapshot(),
            })
            .collect()
    })
}

/// All retained trace events, in completion order.
pub fn events() -> Vec<SpanEvent> {
    with_recorder(|r| r.events.clone())
}

/// Events lost to the [`EVENT_CAP`].
pub fn dropped_events() -> u64 {
    with_recorder(|r| r.dropped)
}

/// Total recorded nanoseconds of one phase name (0 if never seen).
pub fn total_ns(name: &str) -> u64 {
    with_recorder(|r| r.agg.get(name).map_or(0, |s| s.total_ns))
}

/// Drop all recorded spans.
pub fn reset() {
    let mut guard = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_measures_and_aggregates() {
        let _lock = crate::test_lock();
        crate::enable();
        reset();
        {
            let outer = SpanGuard::enter("t.outer");
            for _ in 0..3 {
                let _inner = SpanGuard::enter("t.inner");
            }
            outer.finish().expect("enabled span yields a duration");
        }
        let phases = phases();
        let outer = phases.iter().find(|p| p.name == "t.outer").unwrap();
        let inner = phases.iter().find(|p| p.name == "t.inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.total_ns <= outer.total_ns);
        crate::disable();
    }

    #[test]
    fn depth_rebalances_after_drop() {
        let _lock = crate::test_lock();
        crate::enable();
        {
            let _a = SpanGuard::enter("t.depth");
        }
        {
            let b = SpanGuard::enter("t.depth2");
            assert_eq!(b.active.as_ref().unwrap().depth, 0);
        }
        crate::disable();
    }
}
