//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms with p50/p95/p99.
//!
//! All updates are no-ops while the layer is disabled ([`crate::enable`]).
//! Names follow the dotted scheme of OBSERVABILITY.md (`tsdb.points`,
//! `overhead.memory_bytes`, `epoch.digest_ns`, ...).

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of power-of-two histogram buckets. Bucket `i` holds values whose
/// bit length is `i` (`0` → bucket 0, `[2^(i-1), 2^i)` → bucket `i`);
/// values of 2^63 and above saturate into the last bucket.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram over `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl Histogram {
    pub fn record(&mut self, v: u64) {
        if let Some(slot) = self.counts.get_mut(bucket_of(v)) {
            *slot += 1;
        }
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`q` in `0.0..=1.0`): the upper bound of the bucket
    /// holding the ceil(q·count)-th sample, clamped into `[min, max]` so a
    /// single-sample histogram reports that exact sample. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Upper bound of bucket i: 2^i - 1 (bucket 0 holds only 0).
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Immutable summary used by the exporters.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            mean: self.mean().unwrap_or(0.0),
            p50: self.percentile(0.50).unwrap_or(0),
            p95: self.percentile(0.95).unwrap_or(0),
            p99: self.percentile(0.99).unwrap_or(0),
        }
    }
}

/// One exported histogram summary.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistSnapshot {
    pub count: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Registry::default))
}

/// Add `delta` to a monotone counter. No-op while disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::is_enabled() {
        return;
    }
    with_registry(|r| {
        if let Some(v) = r.counters.get_mut(name) {
            *v += delta;
        } else {
            r.counters.insert(name.to_string(), delta);
        }
    });
}

/// Set a gauge to its latest value. No-op while disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::is_enabled() {
        return;
    }
    with_registry(|r| {
        r.gauges.insert(name.to_string(), value);
    });
}

/// Record one histogram sample. No-op while disabled.
pub fn observe(name: &str, value: u64) {
    if !crate::is_enabled() {
        return;
    }
    with_registry(|r| {
        if let Some(h) = r.hists.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::default();
            h.record(value);
            r.hists.insert(name.to_string(), h);
        }
    });
}

/// Current counter value (0 if never written).
pub fn counter_value(name: &str) -> u64 {
    with_registry(|r| r.counters.get(name).copied().unwrap_or(0))
}

/// Current gauge value, if ever set.
pub fn gauge_value(name: &str) -> Option<f64> {
    with_registry(|r| r.gauges.get(name).copied())
}

/// Summary of one histogram, if any samples were recorded.
pub fn histogram_snapshot(name: &str) -> Option<HistSnapshot> {
    with_registry(|r| r.hists.get(name).map(Histogram::snapshot))
}

/// Everything in the registry, name-sorted (BTreeMap order), for export.
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub hists: Vec<(String, HistSnapshot)>,
}

pub fn snapshot() -> MetricsSnapshot {
    with_registry(|r| MetricsSnapshot {
        counters: r.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        gauges: r.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        hists: r
            .hists
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect(),
    })
}

/// Drop every metric.
pub fn reset() {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let mut h = Histogram::default();
        h.record(1234);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(1234));
        }
        assert_eq!(h.mean(), Some(1234.0));
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.50).unwrap();
        let p95 = h.percentile(0.95).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        assert!((1..=1000).contains(&p50));
        // log2 buckets: p50 of 1..=1000 sits in the bucket holding 500.
        assert!((500..=1023).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn saturated_top_bucket_reports_max() {
        let mut h = Histogram::default();
        for _ in 0..10 {
            h.record(u64::MAX);
        }
        assert_eq!(h.percentile(0.5), Some(u64::MAX));
        assert_eq!(h.percentile(0.99), Some(u64::MAX));
    }
}
