//! Validate observability artefacts. Two modes, both used by
//! `scripts/tier1.sh` to gate the observability contract:
//!
//! * `obs_validate <timings.json> [required-phase ...]` — parse a
//!   `--timings-json` artefact and require the given phases;
//! * `obs_validate --prom <metrics.txt> [required-family ...]` — validate
//!   Prometheus text exposition (TYPE lines present, names in the
//!   `subsystem.phase` → `pathfinder_subsystem_phase` mangled form, no
//!   duplicate samples) and require the given metric families.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: obs_validate <timings.json> [required-phase ...]");
    eprintln!("       obs_validate --prom <metrics.txt> [required-family ...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(first) = it.next() else {
        return usage();
    };
    let prom = first == "--prom";
    let path = if prom {
        match it.next() {
            Some(p) => p,
            None => return usage(),
        }
    } else {
        first
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let required: Vec<&str> = it.map(String::as_str).collect();
    if prom {
        return match obs::prom::validate(&text, &required) {
            Ok(stats) => {
                println!(
                    "obs_validate: {path} ok — {} families, {} samples{}",
                    stats.families,
                    stats.samples,
                    if required.is_empty() {
                        String::new()
                    } else {
                        format!(", required {required:?} present")
                    }
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("obs_validate: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match obs::export::validate_timings(&text, &required) {
        Ok(names) => {
            println!(
                "obs_validate: {path} ok — {} phases{}",
                names.len(),
                if required.is_empty() {
                    String::new()
                } else {
                    format!(", required {required:?} present")
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_validate: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
