//! Validate a `--timings-json` artefact: parse it and require the given
//! phases. Used by `scripts/tier1.sh` to gate the observability contract.
//!
//! Usage: `obs_validate <timings.json> [required-phase ...]`

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: obs_validate <timings.json> [required-phase ...]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let required: Vec<&str> = args.iter().skip(1).map(String::as_str).collect();
    match obs::export::validate_timings(&text, &required) {
        Ok(names) => {
            println!(
                "obs_validate: {path} ok — {} phases{}",
                names.len(),
                if required.is_empty() {
                    String::new()
                } else {
                    format!(", required {required:?} present")
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_validate: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
