//! Exporters: human-readable phase table, Chrome trace-event JSON, and the
//! combined timings JSON (phases + metrics).
//!
//! The Chrome trace loads directly into `chrome://tracing` or
//! <https://ui.perfetto.dev>: each closed span becomes one complete (`X`)
//! event with microsecond timestamps. The timings JSON is the machine
//! contract validated by `scripts/tier1.sh` (schema `pathfinder-obs-v1`).

use std::fmt::Write as _;

use crate::json::{escape, fmt_f64};
use crate::metrics;
use crate::span::{self, PhaseSnapshot};

/// The observed wall-clock window: `max(ts+dur) - min(ts)` over all
/// recorded events, in nanoseconds (0 when nothing was recorded).
pub fn wall_ns() -> u64 {
    let events = span::events();
    let start = events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
    let end = events.iter().map(|e| e.ts_ns + e.dur_ns).max().unwrap_or(0);
    end.saturating_sub(start)
}

/// Fraction of the observed window covered by outermost (minimum-depth)
/// phases — the "can you see where the time goes" number the acceptance
/// bar of ISSUE 2 asks for.
pub fn coverage() -> f64 {
    let phases = span::phases();
    let wall = wall_ns();
    if wall == 0 {
        return 0.0;
    }
    let min_depth = phases.iter().map(|p| p.depth).min().unwrap_or(0);
    let top: u64 = phases
        .iter()
        .filter(|p| p.depth == min_depth)
        .map(|p| p.total_ns)
        .sum();
    (top as f64 / wall as f64).min(1.0)
}

/// The human-readable phase-timing table (`--timings`).
pub fn phase_table() -> String {
    let phases = span::phases();
    let wall = wall_ns().max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>12} {:>10} {:>10} {:>10} {:>7}",
        "phase", "count", "total ms", "mean us", "p95 us", "max us", "% wall"
    );
    for p in &phases {
        let mean_us = if p.count > 0 {
            p.total_ns as f64 / p.count as f64 / 1e3
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12.3} {:>10.1} {:>10.1} {:>10.1} {:>6.1}%",
            p.name,
            p.count,
            p.total_ns as f64 / 1e6,
            mean_us,
            p.hist.p95 as f64 / 1e3,
            p.max_ns as f64 / 1e3,
            100.0 * p.total_ns as f64 / wall as f64,
        );
    }
    let m = metrics::snapshot();
    if !(m.counters.is_empty() && m.gauges.is_empty() && m.hists.is_empty()) {
        let _ = writeln!(out, "\n{:<36} {:>18}", "metric", "value");
        for (name, v) in &m.counters {
            let _ = writeln!(out, "{:<36} {:>18}", name, v);
        }
        for (name, v) in &m.gauges {
            let _ = writeln!(out, "{:<36} {:>18.1}", name, v);
        }
        for (name, h) in &m.hists {
            let _ = writeln!(
                out,
                "{:<36} {:>18}",
                name,
                format!("p50={} p95={} p99={} (n={})", h.p50, h.p95, h.p99, h.count)
            );
        }
    }
    let _ = writeln!(
        out,
        "\nwall {:.3} ms, coverage {:.1}%, {} events ({} dropped)",
        wall_ns() as f64 / 1e6,
        100.0 * coverage(),
        span::events().len(),
        span::dropped_events(),
    );
    out
}

/// Chrome trace-event JSON (`--trace-json`): complete events, microsecond
/// units, one `pid`, dense `tid`s.
pub fn chrome_trace_json() -> String {
    let events = span::events();
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}}}}}",
            escape(e.name),
            e.tid,
            fmt_f64(e.ts_ns as f64 / 1e3),
            fmt_f64(e.dur_ns as f64 / 1e3),
            e.depth,
        );
    }
    out.push_str("]}");
    out
}

fn phase_json(p: &PhaseSnapshot) -> String {
    let mean_ns = if p.count > 0 {
        p.total_ns as f64 / p.count as f64
    } else {
        0.0
    };
    format!(
        "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{},\"max_ns\":{},\
         \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"depth\":{}}}",
        escape(&p.name),
        p.count,
        p.total_ns,
        fmt_f64(mean_ns),
        p.max_ns,
        p.hist.p50,
        p.hist.p95,
        p.hist.p99,
        p.depth,
    )
}

/// The combined timings document (`--timings-json`), schema
/// `pathfinder-obs-v1`.
pub fn timings_json() -> String {
    let phases = span::phases();
    let m = metrics::snapshot();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"pathfinder-obs-v1\",\"wall_ns\":{},\"coverage\":{},\
         \"dropped_events\":{},\"phases\":[",
        wall_ns(),
        fmt_f64(coverage()),
        span::dropped_events(),
    );
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&phase_json(p));
    }
    out.push_str("],\"counters\":{");
    for (i, (name, v)) in m.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(name), v);
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in m.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(name), fmt_f64(*v));
    }
    out.push_str("},\"histograms\":[");
    for (i, (name, h)) in m.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\
             \"p50\":{},\"p95\":{},\"p99\":{}}}",
            escape(name),
            h.count,
            h.min,
            h.max,
            fmt_f64(h.mean),
            h.p50,
            h.p95,
            h.p99,
        );
    }
    out.push_str("]}");
    out
}

/// Validate a `pathfinder-obs-v1` timings document: it must parse, carry
/// the schema marker, and contain every `required_phase`. Returns the
/// parsed phase names on success.
pub fn validate_timings(text: &str, required_phases: &[&str]) -> Result<Vec<String>, String> {
    let doc = crate::json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(|v| v.as_str()) {
        Some("pathfinder-obs-v1") => {}
        other => return Err(format!("bad or missing schema marker: {other:?}")),
    }
    let phases = doc
        .get("phases")
        .and_then(|v| v.as_arr())
        .ok_or("missing phases array")?;
    let names: Vec<String> = phases
        .iter()
        .filter_map(|p| p.get("name").and_then(|n| n.as_str()).map(str::to_string))
        .collect();
    for required in required_phases {
        if !names.iter().any(|n| n == required) {
            return Err(format!(
                "mandatory phase {required:?} missing (have: {names:?})"
            ));
        }
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_missing_phase() {
        let doc = r#"{"schema":"pathfinder-obs-v1","phases":[{"name":"a"}]}"#;
        assert!(validate_timings(doc, &["a"]).is_ok());
        assert!(validate_timings(doc, &["a", "b"]).is_err());
        assert!(validate_timings("{}", &[]).is_err());
        assert!(validate_timings("not json", &[]).is_err());
    }
}
