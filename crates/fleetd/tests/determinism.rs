//! The fleet-mode correctness anchor: with a fixed seed, every host's
//! counter stream is byte-identical regardless of how many shards the
//! fleet is split across. Sharding is a throughput knob, never a
//! semantic one.

use fleetd::shard::Fleet;
use fleetd::FleetConfig;

fn dump_with_shards(shards: u32) -> String {
    let cfg = FleetConfig {
        hosts: 6,
        shards,
        seed: 0xDECAF,
        epochs_per_round: 2,
        retention_rounds: 2,
        record_streams: true,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::launch(cfg).expect("launch fleet");
    for _ in 0..3 {
        fleet.run_round().expect("round");
    }
    let dump = fleet.dump_streams().expect("dump");
    fleet.shutdown();
    dump
}

#[test]
fn fixed_seed_streams_are_identical_across_shard_counts() {
    let one = dump_with_shards(1);
    assert!(!one.is_empty(), "streams were recorded");
    // 6 hosts x 3 rounds = 18 CSV lines.
    assert_eq!(one.lines().count(), 18);
    // Each line is id,ts followed by the full counter set.
    let columns = fleetd::host::counter_names().len();
    for line in one.lines() {
        assert_eq!(line.split(',').count(), columns + 2, "bad line: {line}");
    }
    let two = dump_with_shards(2);
    let three = dump_with_shards(3);
    assert_eq!(one, two, "1-shard and 2-shard streams diverge");
    assert_eq!(one, three, "1-shard and 3-shard streams diverge");
}

#[test]
fn streams_are_nonconstant_and_per_host_distinct() {
    let dump = dump_with_shards(2);
    let mut first_round: Vec<&str> = dump
        .lines()
        .filter(|l| l.split(',').nth(1) == Some("2"))
        .collect();
    assert_eq!(first_round.len(), 6, "one first-round line per host");
    first_round.sort_unstable();
    first_round.dedup();
    assert!(
        first_round.len() > 1,
        "hosts with different workloads/policies must produce different streams"
    );
}

#[test]
fn zero_host_fleet_is_rejected() {
    let cfg = FleetConfig {
        hosts: 0,
        ..FleetConfig::default()
    };
    assert!(Fleet::launch(cfg).is_err());
}
