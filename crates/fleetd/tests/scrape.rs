//! Live scrape contract: a real TCP GET against the daemon's `/metrics`
//! endpoint returns Prometheus text exposition that passes
//! `obs::prom::validate` with the families FLEET.md promises.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use fleetd::shard::{spawn_server, Fleet};
use fleetd::FleetConfig;

fn get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response.split_once("\r\n\r\n").expect("header split");
    (head.to_string(), body.to_string())
}

#[test]
fn live_metrics_scrape_validates() {
    obs::enable();
    let cfg = FleetConfig {
        hosts: 4,
        shards: 2,
        seed: 11,
        epochs_per_round: 1,
        retention_rounds: 4,
        record_streams: false,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::launch(cfg).expect("launch");
    for _ in 0..2 {
        fleet.run_round().expect("round");
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    spawn_server(fleet.state(), listener).expect("server");

    let (head, _) = get(&addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "healthz: {head}");

    let (head, body) = get(&addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "metrics: {head}");
    let stats = obs::prom::validate(
        &body,
        &[
            "pathfinder_fleetd_rounds",
            "pathfinder_fleetd_points",
            "pathfinder_fleetd_hosts",
            "pathfinder_fleetd_shard_lag_ns",
            "pathfinder_fleetd_round_ns",
            "pathfinder_tsdb_resident_bytes",
            "pathfinder_obs_dropped_events",
            "pathfinder_fleet_inst_retired_any",
            "pathfinder_fleet_cpu_clk_unhalted_thread",
            "pathfinder_host_inst_retired_any",
        ],
    )
    .expect("scrape validates");
    assert!(stats.families > 250, "full counter set exposed");
    // One headline sample per host.
    assert_eq!(body.matches("pathfinder_host_inst_retired_any{").count(), 4);

    // The scrape path reports itself: a second scrape sees the first.
    let (_, body2) = get(&addr, "/metrics");
    assert!(
        body2.contains("pathfinder_fleetd_scrapes"),
        "scrape counter appears after the first scrape"
    );

    let (head, _) = get(&addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "unknown path: {head}");

    fleet.shutdown();
}
