//! Golden byte-identity for a fixed-seed fleetd round: the recorded
//! per-host counter streams of a small fleet must match the bytes
//! captured before the event-wheel scheduler landed (`tests/golden/`).
//!
//! `tests/determinism.rs` pins *shard-count* invariance; this test pins
//! the *values* across scheduler rewrites — same discipline as the
//! figure CSV goldens in `crates/bench/tests/golden_identity.rs`.
//!
//! Refresh (only when the simulation model itself legitimately changes):
//! `FLEETD_GOLDEN_REFRESH=1 cargo test -p fleetd --test golden_round`.

use std::path::PathBuf;

use fleetd::shard::Fleet;
use fleetd::FleetConfig;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fleet_round.csv")
}

/// One fixed-seed fleet round matrix: 5 hosts (covers all four FLEET_APPS
/// and both placement policies), 2 shards, 3 rounds of 2 epochs.
fn run_fixed_fleet(datapath: simarch::DatapathMode) -> String {
    let cfg = FleetConfig {
        hosts: 5,
        shards: 2,
        seed: 0x901D_E4,
        epochs_per_round: 2,
        retention_rounds: 0,
        record_streams: true,
        datapath,
    };
    let mut fleet = Fleet::launch(cfg).expect("launch fleet");
    for _ in 0..3 {
        fleet.run_round().expect("round");
    }
    let dump = fleet.dump_streams().expect("dump");
    fleet.shutdown();
    dump
}

#[test]
fn fixed_seed_round_streams_match_golden_bytes() {
    let dump = run_fixed_fleet(simarch::DatapathMode::Batched);
    assert!(!dump.is_empty(), "streams were recorded");
    if std::env::var_os("FLEETD_GOLDEN_REFRESH").is_some() {
        std::fs::create_dir_all(golden_path().parent().expect("golden parent"))
            .expect("create golden dir");
        std::fs::write(golden_path(), &dump).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(golden_path())
        .expect("read golden fleet_round.csv (run once with FLEETD_GOLDEN_REFRESH=1)");
    assert!(
        dump == want,
        "fleetd fixed-seed round diverged from its pre-wheel golden\n\
         --- golden ---\n{want}\n--- fresh ---\n{dump}",
    );
}

/// The datapath axis of the same golden: the retained per-op reference
/// walk must reproduce the identical stream bytes the (default) batched
/// pipeline records. Together with the test above this proves
/// batched == reference end to end through fleet mode — shards, tsdb
/// ingest and the CSV recorder included.
#[test]
fn fixed_seed_round_streams_are_datapath_invariant() {
    let reference = run_fixed_fleet(simarch::DatapathMode::Reference);
    assert!(!reference.is_empty(), "streams were recorded");
    let want = std::fs::read_to_string(golden_path())
        .expect("read golden fleet_round.csv (run once with FLEETD_GOLDEN_REFRESH=1)");
    assert!(
        reference == want,
        "reference-datapath fleetd round diverged from the golden\n\
         --- golden ---\n{want}\n--- reference ---\n{reference}",
    );
}
