//! Graceful-shutdown anchors (ISSUE 8): a stop request drains the
//! in-flight round — no counter round is ever torn — and the scrape
//! listener unblocks and closes instead of leaking a detached accept
//! loop.
//!
//! Torn-round check: a fleet asked for many rounds but stopped after
//! the first must be byte-identical (streams, snapshot, roll-ups) to a
//! fresh fleet asked for exactly one round. `Fleet::drive` only
//! consults the stop predicate at round boundaries, so the two runs
//! see the same sequence of whole rounds.

use fleetd::shard::{self, spawn_server, Fleet};
use fleetd::FleetConfig;

fn cfg(hosts: u32, shards: u32) -> FleetConfig {
    FleetConfig {
        hosts,
        shards,
        epochs_per_round: 2,
        record_streams: true,
        ..FleetConfig::default()
    }
}

#[test]
fn stop_between_rounds_never_tears_a_round() {
    // Asked for 8 rounds, stopped as soon as one has completed.
    let mut stopped = Fleet::launch(cfg(6, 2)).expect("launch stopped fleet");
    let done = std::cell::Cell::new(0u64);
    let stopped_early = stopped
        .drive(
            8,
            || done.get() >= 1,
            |s| {
                done.set(s.round);
                Ok(())
            },
        )
        .expect("drive stopped fleet");
    assert!(stopped_early, "the stop predicate must end the loop");
    assert_eq!(
        done.get(),
        1,
        "exactly one round drains before the stop lands"
    );

    // A fresh fleet asked for exactly one round, no stop involved.
    let mut fresh = Fleet::launch(cfg(6, 2)).expect("launch fresh fleet");
    let budget_done = fresh
        .drive(1, || false, |_| Ok(()))
        .expect("drive fresh fleet");
    assert!(!budget_done, "the budget, not a stop, must end this loop");

    let (a, b) = (stopped.state().read(), fresh.state().read());
    assert_eq!(a.round, 1);
    assert_eq!(a.round, b.round);
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.points, b.points);
    assert_eq!(a.counters, b.counters, "fleet roll-ups must not tear");
    assert_eq!(a.headline, b.headline, "per-host headlines must not tear");
    assert_eq!(
        stopped.dump_streams().expect("dump stopped"),
        fresh.dump_streams().expect("dump fresh"),
        "per-host counter streams must be byte-identical"
    );
    stopped.shutdown();
    fresh.shutdown();
}

#[test]
fn sigterm_lands_in_the_stop_flag() {
    shard::install_stop_handlers();
    shard::clear_stop();
    assert!(!shard::stop_requested());
    // raise(3) runs the handler synchronously on this thread.
    shard::raise_sigterm();
    assert!(
        shard::stop_requested(),
        "the SIGTERM handler must set the stop flag"
    );
    shard::clear_stop();
}

#[test]
fn stop_server_unblocks_and_closes_the_listener() {
    let fleet = Fleet::launch(cfg(2, 1)).expect("launch fleet");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let state = fleet.state();
    let handle = spawn_server(fleet.state(), listener).expect("spawn server");

    // If the accept loop failed to observe the flag this join would
    // hang and the harness would time the test out — returning is the
    // assertion.
    shard::stop_server(&state, &addr, handle);
    assert!(
        std::net::TcpStream::connect(&addr).is_err(),
        "the listener must be closed once stop_server returns"
    );
    fleet.shutdown();
}
