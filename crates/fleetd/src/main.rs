//! `pathfinder-fleetd` — the fleet-mode collector daemon.
//!
//! ```text
//! pathfinder-fleetd [--hosts N] [--shards K] [--rounds R]
//!                   [--epochs-per-round E] [--seed S] [--retention N]
//!                   [--listen ADDR|none] [--scrape-out FILE]
//!                   [--bench] [--label L] [--out FILE]
//!                   [--timings] [--timings-json FILE] [--trace FILE]
//! ```
//!
//! Launches a sharded fleet of simulated hosts, serves `/metrics` on
//! `--listen` (port 0 picks an ephemeral port; the bound address is
//! printed as `listening on ADDR`), and drives `--rounds` collection
//! rounds (`0` = run until stopped). `SIGTERM`/Ctrl-C request a
//! graceful stop: the in-flight round drains completely (counters are
//! never torn mid-round), the scrape listener is woken and closed, and
//! the shard workers are joined — the normal exit path, just earlier.
//! `--scrape-out` performs a real TCP
//! self-scrape after the last round and writes the exposition body to a
//! file — `scripts/tier1.sh` validates it with `obs_validate --prom`.
//! `--bench` records hosts, epochs/s, points/s, scrape p99 and resident
//! bytes into a BENCH-style JSON file (default `BENCH_pr7.json`),
//! merged by `(name, metric)` like `perfbench`.
//!
//! The whole binary is on the daemon surface: panic-free (pflint
//! `panic-freedom` root) and obs-clocked.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;

use fleetd::aggregate::Log2Hist;
use fleetd::shard::{self, spawn_server, Fleet};
use fleetd::FleetConfig;

struct Opts {
    cfg: FleetConfig,
    rounds: u64,
    listen: Option<String>,
    scrape_out: Option<PathBuf>,
    bench: bool,
    label: Option<String>,
    out: PathBuf,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        cfg: FleetConfig::default(),
        rounds: 4,
        listen: Some("127.0.0.1:9177".to_string()),
        scrape_out: None,
        bench: false,
        label: None,
        out: PathBuf::from("BENCH_pr7.json"),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--hosts" => {
                opts.cfg.hosts = parse_num(&value("--hosts")?, "--hosts")?;
            }
            "--shards" => {
                opts.cfg.shards = parse_num(&value("--shards")?, "--shards")?;
            }
            "--rounds" => {
                opts.rounds = parse_num(&value("--rounds")?, "--rounds")?;
            }
            "--epochs-per-round" => {
                opts.cfg.epochs_per_round =
                    parse_num(&value("--epochs-per-round")?, "--epochs-per-round")?;
            }
            "--seed" => {
                opts.cfg.seed = parse_num(&value("--seed")?, "--seed")?;
            }
            "--retention" => {
                opts.cfg.retention_rounds = parse_num(&value("--retention")?, "--retention")?;
            }
            "--datapath" => {
                opts.cfg.datapath = match value("--datapath")?.as_str() {
                    "batched" => simarch::DatapathMode::Batched,
                    "reference" => simarch::DatapathMode::Reference,
                    other => {
                        return Err(format!(
                            "--datapath: `{other}` is not `batched` or `reference`"
                        ))
                    }
                };
            }
            "--listen" => {
                let addr = value("--listen")?;
                opts.listen = if addr == "none" { None } else { Some(addr) };
            }
            "--scrape-out" => opts.scrape_out = Some(PathBuf::from(value("--scrape-out")?)),
            "--bench" => opts.bench = true,
            "--label" => opts.label = Some(value("--label")?),
            "--out" => opts.out = PathBuf::from(value("--out")?),
            other => return Err(format!("unknown flag `{other}` (see --help in FLEET.md)")),
        }
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: `{s}` is not a valid number"))
}

/// One real scrape over TCP: connect, GET /metrics, return the body.
fn scrape(addr: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("send scrape: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read scrape: {e}"))?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err("scrape response has no header/body split".to_string()),
    }
}

struct BenchRow {
    name: String,
    metric: String,
    value: f64,
    unit: String,
}

fn render_rows(rows: &[BenchRow]) -> String {
    let mut out = String::from("[\n");
    let last = rows.len().saturating_sub(1);
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {{\"name\": \"{}\", \"metric\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}",
            r.name,
            r.metric,
            obs::json::fmt_f64(r.value),
            r.unit,
            if i < last { "," } else { "" }
        );
    }
    out.push_str("]\n");
    out
}

/// Merge rows into `path` by `(name, metric)`, `perfbench`-style:
/// existing rows keep their position, fresh rows replace or append.
fn merge_into_file(path: &PathBuf, fresh: Vec<BenchRow>) -> Result<(), String> {
    let mut rows: Vec<BenchRow> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(v) = obs::json::parse(&text) {
            for item in v.as_arr().unwrap_or(&[]) {
                let (Some(name), Some(metric), Some(value), Some(unit)) = (
                    item.get("name").and_then(|x| x.as_str()),
                    item.get("metric").and_then(|x| x.as_str()),
                    item.get("value").and_then(|x| x.as_f64()),
                    item.get("unit").and_then(|x| x.as_str()),
                ) else {
                    continue;
                };
                rows.push(BenchRow {
                    name: name.to_string(),
                    metric: metric.to_string(),
                    value,
                    unit: unit.to_string(),
                });
            }
        }
    }
    for f in fresh {
        match rows
            .iter_mut()
            .find(|r| r.name == f.name && r.metric == f.metric)
        {
            Some(slot) => *slot = f,
            None => rows.push(f),
        }
    }
    std::fs::write(path, render_rows(&rows))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("[json] {}", path.display());
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (obs_args, rest) = obs::cli::ObsArgs::strip(&args);
    let session = obs::cli::Session::new(obs_args);
    // The daemon's self-metrics are its product, not an opt-in debug
    // artefact: record regardless of which obs flags were passed.
    obs::enable();
    let opts = parse_opts(&rest)?;

    // Route SIGINT/SIGTERM to the stop flag before any round runs, so a
    // kill during launch already drains instead of aborting.
    shard::install_stop_handlers();

    let mut fleet = Fleet::launch(opts.cfg.clone())?;
    println!(
        "fleetd: {} hosts x {} counters over {} shards, {} epochs/round",
        opts.cfg.hosts,
        fleet.columns(),
        opts.cfg.shards,
        opts.cfg.epochs_per_round
    );

    let mut server_handle = None;
    let addr = match &opts.listen {
        Some(requested) => {
            let listener =
                TcpListener::bind(requested).map_err(|e| format!("bind {requested}: {e}"))?;
            let local = listener
                .local_addr()
                .map_err(|e| format!("local_addr: {e}"))?;
            server_handle = Some(
                spawn_server(fleet.state(), listener)
                    .map_err(|e| format!("spawn scrape server: {e}"))?,
            );
            println!("listening on {local}");
            Some(local.to_string())
        }
        None => None,
    };

    let t0 = obs::clock::now_ns();
    let mut epochs_total = 0u64;
    let mut points_total = 0u64;
    let mut scrape_hist = Log2Hist::new();
    let mut resident = 0u64;
    let mut round = 0u64;
    let stopped = fleet.drive(opts.rounds, shard::stop_requested, |summary| {
        epochs_total += summary.epochs;
        points_total += summary.points;
        resident = summary.resident_bytes;
        round += 1;
        if opts.bench {
            if let Some(a) = &addr {
                let s0 = obs::clock::now_ns();
                let body = scrape(a)?;
                scrape_hist.record(obs::clock::now_ns().saturating_sub(s0));
                if body.is_empty() {
                    return Err("bench scrape returned an empty body".to_string());
                }
            }
        }
        println!(
            "round {round}: {} epochs, {} points, {:.1} ms (shard lag {:.1} ms), {} resident bytes",
            summary.epochs,
            summary.points,
            summary.round_ns as f64 / 1e6,
            summary.shard_lag_ns as f64 / 1e6,
            summary.resident_bytes
        );
        Ok(())
    })?;
    if stopped {
        println!("fleetd: stop requested — round {round} drained, shutting down");
    }
    let wall_s = obs::clock::now_ns().saturating_sub(t0) as f64 / 1e9;

    if let Some(path) = &opts.scrape_out {
        let a = addr
            .as_deref()
            .ok_or_else(|| "--scrape-out needs --listen".to_string())?;
        // Warm-up scrape so the written body includes the scrape-path
        // self-metrics (fleetd.scrape_ns / fleetd.scrapes) themselves.
        let _ = scrape(a)?;
        let s0 = obs::clock::now_ns();
        let body = scrape(a)?;
        scrape_hist.record(obs::clock::now_ns().saturating_sub(s0));
        std::fs::write(path, &body).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("[scrape] {} ({} bytes)", path.display(), body.len());
    }

    if opts.bench {
        let name = match &opts.label {
            Some(l) => format!("fleetd.hosts{}.{l}", opts.cfg.hosts),
            None => format!("fleetd.hosts{}", opts.cfg.hosts),
        };
        let mk = |metric: &str, value: f64, unit: &str| BenchRow {
            name: name.clone(),
            metric: metric.to_string(),
            value,
            unit: unit.to_string(),
        };
        let per_sec = |n: u64| {
            if wall_s > 0.0 {
                n as f64 / wall_s
            } else {
                0.0
            }
        };
        let rows = vec![
            mk("hosts", f64::from(opts.cfg.hosts), "hosts"),
            mk("epochs_per_sec", per_sec(epochs_total), "epochs/s"),
            mk("points_per_sec", per_sec(points_total), "points/s"),
            mk("scrape_p99_ns", scrape_hist.percentile(0.99) as f64, "ns"),
            mk("resident_bytes", resident as f64, "bytes"),
        ];
        merge_into_file(&opts.out, rows)?;
    }

    println!("done: {round} rounds, {epochs_total} epochs, {points_total} points in {wall_s:.2}s");
    if let (Some(handle), Some(a)) = (server_handle, &addr) {
        // Close the listener before joining the workers: once this
        // returns, the port no longer accepts scrapes.
        shard::stop_server(&fleet.state(), a, handle);
    }
    fleet.shutdown();
    session.finish().map_err(|e| format!("obs export: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pathfinder-fleetd: {e}");
            ExitCode::FAILURE
        }
    }
}
