//! The scrape endpoint: a std-only HTTP/1.1 responder serving Prometheus
//! text exposition.
//!
//! Routes:
//!
//! * `GET /metrics` — the fleet in Prometheus text format: the daemon's
//!   own obs self-metrics (`pathfinder_fleetd_*`, `pathfinder_tsdb_*`,
//!   `pathfinder_obs_dropped_events`), fleet-aggregated counter summaries
//!   (`pathfinder_fleet_<counter>`: per-host p50/p95/p99 quantiles plus
//!   `_sum` = fleet total and `_count` = host count), and per-host
//!   headline counters (`pathfinder_host_*{host="N"}`).
//! * `GET /healthz` — liveness.
//!
//! This module deliberately contains no concurrency primitives: it reads
//! the latest [`FleetSnapshot`] through [`SharedState::read`] and is
//! driven from the thread spawned by `shard::spawn_server`. Wall-clock
//! reads go through `obs::clock`; scrape latency is observed into the
//! `fleetd.scrape_ns` histogram and scrapes are counted in
//! `fleetd.scrapes` — so the daemon's own exposition describes its
//! scrape path too.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use obs::metrics::HistSnapshot;
use obs::prom::PromText;

use crate::shard::{FleetSnapshot, SharedState};

/// Render the full exposition for one scrape.
pub fn render_metrics(snap: &FleetSnapshot) -> String {
    let mut w = PromText::new();
    w.render_registry();
    let hosts = snap.hosts;
    for (name, stat) in snap.names.iter().zip(snap.counters.iter()) {
        let mean = if hosts == 0 {
            0.0
        } else {
            stat.sum as f64 / hosts as f64
        };
        let h = HistSnapshot {
            count: hosts,
            min: 0,
            max: stat.p99,
            mean,
            p50: stat.p50,
            p95: stat.p95,
            p99: stat.p99,
        };
        w.summary(&format!("fleet.{name}"), &[], &h);
    }
    let mut id = String::new();
    for (host, vals) in &snap.headline {
        id.clear();
        let _ = write!(id, "{host}");
        let mut v = vals.iter();
        if let Some(inst) = v.next() {
            w.counter("host.inst_retired.any", &[("host", id.as_str())], *inst);
        }
        if let Some(cycles) = v.next() {
            w.counter(
                "host.cpu_clk_unhalted.thread",
                &[("host", id.as_str())],
                *cycles,
            );
        }
    }
    w.into_string()
}

fn respond(stream: &TcpStream, status: &str, content_type: &str, body: &str) {
    let mut out = String::with_capacity(body.len() + 128);
    let _ = write!(
        out,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    out.push_str(body);
    let mut s = stream;
    let _ = s.write_all(out.as_bytes());
    let _ = s.flush();
}

fn handle(stream: &TcpStream, state: &SharedState) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2000)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(2000)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so well-behaved clients see a clean close.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header.trim_end().is_empty() => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        respond(
            stream,
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n",
        );
        return;
    }
    match path {
        "/metrics" => {
            let t0 = obs::clock::now_ns();
            let body = render_metrics(&state.read());
            respond(
                stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
            obs::metrics::observe("fleetd.scrape_ns", obs::clock::now_ns().saturating_sub(t0));
            obs::metrics::counter_add("fleetd.scrapes", 1);
        }
        "/healthz" => respond(stream, "200 OK", "text/plain", "ok\n"),
        _ => respond(stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Accept loop: one request per connection, close after responding.
/// Runs until [`SharedState::stopping`] is raised — `shard::stop_server`
/// sets the flag and then pokes the listener with a throwaway connection
/// so the blocking accept returns; the flag is checked *before* the
/// woken connection is handled, the loop breaks, and returning drops the
/// listener (closing the socket).
pub fn serve(listener: &TcpListener, state: &SharedState) {
    for stream in listener.incoming() {
        if state.stopping() {
            break;
        }
        match stream {
            Ok(s) => handle(&s, state),
            Err(_) => continue,
        }
    }
}
