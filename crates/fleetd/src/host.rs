//! One simulated host: a small [`Machine`] plus its cumulative counter
//! totals in `pmu::registry::all_events()` column order.
//!
//! Host identity is the only input to a host's behaviour: its workload is
//! picked by `id % 4` from [`FLEET_APPS`], its placement policy alternates
//! local/CXL by id, and its trace seed is derived from the fleet seed and
//! the id alone. Shard assignment never feeds into any of this — that is
//! what makes fixed-seed fleet streams byte-identical across shard counts.

use std::fmt::Write as _;

use pmu::{ChaEvent, CoreEvent, CxlEvent, ImcEvent, M2pEvent, SystemDelta, SystemSnapshot};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

/// The workload mix, assigned round-robin by host id.
pub const FLEET_APPS: [&str; 4] = ["505.mcf_r", "503.bwaves_r", "510.parest_r", "502.gcc_r"];

/// Full counter set, one column per PMU event, in registry order.
pub fn counter_names() -> Vec<String> {
    pmu::registry::all_events()
        .into_iter()
        .map(|e| e.name)
        .collect()
}

/// Per-host machine: a cut-down TINY so 10k+ hosts fit on one box.
pub fn host_config() -> MachineConfig {
    let mut c = MachineConfig::tiny();
    c.name = "FLEET";
    c.cores = 1;
    c.llc_slices = 1;
    c.dram_channels = 2;
    c.l2.size_bytes = 8 << 10;
    c.llc.size_bytes = 32 << 10;
    c.epoch_cycles = 10_000;
    c
}

fn mix_seed(fleet_seed: u64, id: u32) -> u64 {
    fleet_seed ^ u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One simulated host and its counter state.
pub struct HostSim {
    pub id: u32,
    machine: Machine,
    prev: SystemSnapshot,
    /// Cumulative counter totals, registry column order.
    pub totals: Vec<u64>,
    /// Epochs simulated so far (the ingest timestamp).
    pub epochs_done: u64,
    /// Optional CSV stream (`id,ts,v0,v1,...` per round) for the
    /// determinism contract.
    pub stream: String,
}

impl HostSim {
    /// Build host `id` from the fleet seed. Fails only if the workload
    /// registry is missing one of [`FLEET_APPS`].
    pub fn new(
        id: u32,
        fleet_seed: u64,
        columns: usize,
        datapath: simarch::DatapathMode,
    ) -> Result<HostSim, String> {
        let [a0, a1, a2, a3] = FLEET_APPS;
        let app = match id % 4 {
            0 => a0,
            1 => a1,
            2 => a2,
            _ => a3,
        };
        let policy = if id.is_multiple_of(2) {
            MemPolicy::Cxl
        } else {
            MemPolicy::Local
        };
        // Effectively-infinite op budget: fleet hosts never drain.
        let trace = workloads::build(app, u64::MAX / 2, mix_seed(fleet_seed, id))
            .ok_or_else(|| format!("workload registry has no app `{app}`"))?;
        let mut machine = Machine::new(host_config());
        machine.set_datapath_mode(datapath);
        machine.attach(0, Workload::new(app, trace, policy));
        let prev = machine.pmu.snapshot(machine.now());
        Ok(HostSim {
            id,
            machine,
            prev,
            totals: vec![0; columns],
            epochs_done: 0,
            stream: String::new(),
        })
    }

    /// Advance `epochs` epochs; fold the counter delta into `totals` and
    /// optionally append one CSV line to the recorded stream.
    pub fn advance(&mut self, epochs: u64, record_stream: bool) {
        let mut last = None;
        for _ in 0..epochs {
            last = Some(self.machine.run_epoch().snapshot);
        }
        let Some(snap) = last else { return };
        let delta = snap.delta(&self.prev);
        accumulate(&delta, &mut self.totals);
        self.prev = snap;
        self.epochs_done += epochs;
        if record_stream {
            let _ = write!(self.stream, "{},{}", self.id, self.epochs_done);
            for v in &self.totals {
                let _ = write!(self.stream, ",{v}");
            }
            self.stream.push('\n');
        }
    }

    /// Headline counters for per-host exposition, resolved through
    /// [`headline_indices`]: (instructions retired, unhalted cycles).
    pub fn headline(&self, indices: &[usize; 2]) -> [u64; 2] {
        let mut out = [0u64; 2];
        for (slot, i) in out.iter_mut().zip(indices.iter()) {
            if let Some(v) = self.totals.get(*i) {
                *slot = *v;
            }
        }
        out
    }
}

/// Column indices of the headline counters (`inst_retired.any`,
/// `cpu_clk_unhalted.thread`) in the registry-ordered totals.
pub fn headline_indices() -> [usize; 2] {
    let all = CoreEvent::all();
    let pos = |ev: CoreEvent| all.iter().position(|e| *e == ev).unwrap_or(0);
    [pos(CoreEvent::InstRetired), pos(CoreEvent::CpuClkUnhalted)]
}

/// Fold a system delta into cumulative totals, registry column order
/// (Core → CHA → IMC → M2PCIe → CXL, each in `all()` order — exactly the
/// order `pmu::registry::all_events()` reports).
pub fn accumulate(delta: &SystemDelta, totals: &mut [u64]) {
    let mut it = totals.iter_mut();
    let mut add = |v: u64| {
        if let Some(t) = it.next() {
            *t += v;
        }
    };
    for ev in CoreEvent::all() {
        add(delta.core_sum(ev));
    }
    for ev in ChaEvent::all() {
        add(delta.cha_sum(ev));
    }
    for ev in ImcEvent::all() {
        add(delta.imc_sum(ev));
    }
    for ev in M2pEvent::all() {
        add(delta.m2p_sum(ev));
    }
    for ev in CxlEvent::all() {
        add(delta.cxl_sum(ev));
    }
}
