//! Shard workers and the fleet coordinator — all of fleetd's concurrency
//! lives in this one file (a reviewed `concurrency-hygiene` allowlist
//! entry; see STATIC_ANALYSIS.md).
//!
//! Topology: hosts are split into contiguous id ranges, one range per
//! shard. Each shard is a long-lived worker thread that owns its
//! [`HostSim`]s outright plus a private columnar [`tsdb::Db`] — no shared
//! mutable simulation state, so a round is pure message passing: the
//! coordinator broadcasts [`Cmd::Round`], every worker advances its hosts
//! by the epoch budget, ingests one row per host through the
//! allocation-free `series_handle`/`ingest` path, and sends back a
//! [`ShardReport`] with its partial aggregates. The coordinator merges
//! reports, publishes a [`FleetSnapshot`] for the scrape endpoint behind
//! [`SharedState`], and emits the daemon's `obs` self-metrics.
//!
//! Graceful shutdown lives here too: `SIGINT`/`SIGTERM` handlers set a
//! process-wide stop flag ([`install_stop_handlers`]), [`Fleet::drive`]
//! polls it only at round boundaries so an in-flight round always
//! drains (no torn counters), and [`stop_server`] wakes the accept loop
//! so the listener closes before the workers are joined.
//!
//! Because a host's behaviour depends only on (fleet seed, host id) and
//! workers never interact mid-round, the per-host counter streams are
//! byte-identical for any shard count — the determinism anchor tested in
//! `tests/determinism.rs`.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use tsdb::{Db, SeriesId};

use crate::aggregate::{CounterStat, Log2Hist};
use crate::host::{self, HostSim};
use crate::FleetConfig;

/// Commands the coordinator sends to a shard worker.
enum Cmd {
    /// Advance every host by the round's epoch budget and report.
    Round,
    /// Reply with the concatenation of this shard's recorded host streams.
    Dump(Sender<String>),
    /// Exit the worker loop.
    Stop,
}

/// One shard's per-round report back to the coordinator.
struct ShardReport {
    /// Wall time this shard spent on the round (via `obs::clock`).
    round_ns: u64,
    /// Simulated epochs advanced this round, summed over hosts.
    epochs: u64,
    /// Rows ingested this round.
    points: u64,
    /// Real heap bytes held by this shard's columnar store.
    resident_bytes: u64,
    /// Per-counter partial sums of cumulative host totals.
    sums: Vec<u64>,
    /// Per-counter distributions of cumulative host totals.
    hists: Vec<Log2Hist>,
    /// `(host id, [inst_retired, cycles])` for per-host exposition.
    headline: Vec<(u32, [u64; 2])>,
}

/// What a scrape sees: the coordinator publishes one of these per round.
#[derive(Clone, Default)]
pub struct FleetSnapshot {
    /// Rounds completed.
    pub round: u64,
    pub hosts: u64,
    /// Total simulated epochs across the fleet.
    pub epochs: u64,
    /// Total rows ingested across all shard DBs.
    pub points: u64,
    /// Real columnar heap, summed over shards.
    pub resident_bytes: u64,
    /// Counter column names, registry order.
    pub names: Arc<Vec<String>>,
    /// Fleet roll-up per counter (sum + per-host percentiles).
    pub counters: Vec<CounterStat>,
    /// Headline counters per host, sorted by host id.
    pub headline: Vec<(u32, [u64; 2])>,
}

/// The coordinator/scrape handshake: the one piece of shared mutable
/// state, a mutex around the latest [`FleetSnapshot`]. The server module
/// only sees [`SharedState::read`], keeping lock handling (and the
/// concurrency allowlist) confined to this file.
pub struct SharedState {
    inner: Mutex<FleetSnapshot>,
    /// Raised once by [`stop_server`]; `server::serve` polls it at the
    /// top of every accept iteration and exits (closing the listener)
    /// when it is set.
    stopping: AtomicBool,
}

impl SharedState {
    fn new() -> SharedState {
        SharedState {
            inner: Mutex::new(FleetSnapshot::default()),
            stopping: AtomicBool::new(false),
        }
    }

    /// Clone out the latest published snapshot.
    pub fn read(&self) -> FleetSnapshot {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// True once [`stop_server`] has asked the scrape loop to exit.
    pub fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    fn set_stopping(&self) {
        self.stopping.store(true, Ordering::Release);
    }

    fn publish(&self, snap: FleetSnapshot) {
        *self.inner.lock().unwrap_or_else(|e| e.into_inner()) = snap;
    }
}

/// Coordinator-side summary of one completed round.
#[derive(Clone, Copy, Debug)]
pub struct RoundSummary {
    pub round: u64,
    /// Epochs advanced this round across the fleet.
    pub epochs: u64,
    /// Rows ingested this round.
    pub points: u64,
    /// Coordinator wall time for the round.
    pub round_ns: u64,
    /// Fastest-to-slowest shard spread this round.
    pub shard_lag_ns: u64,
    pub resident_bytes: u64,
}

/// A running fleet: shard worker threads plus the coordinator state.
pub struct Fleet {
    cfg: FleetConfig,
    names: Arc<Vec<String>>,
    txs: Vec<Sender<Cmd>>,
    rx: Receiver<ShardReport>,
    handles: Vec<JoinHandle<()>>,
    state: Arc<SharedState>,
    round: u64,
    epochs_total: u64,
    points_total: u64,
}

impl Fleet {
    /// Build every host, partition them into contiguous shards, and spawn
    /// one worker thread per shard.
    pub fn launch(cfg: FleetConfig) -> Result<Fleet, String> {
        cfg.validate()?;
        let names = Arc::new(host::counter_names());
        let columns = names.len();
        let headline_idx = host::headline_indices();
        let per = u64::from(cfg.hosts).div_ceil(u64::from(cfg.shards)).max(1) as u32;
        let (report_tx, rx) = channel();
        let mut txs = Vec::new();
        let mut handles = Vec::new();
        let mut start = 0u32;
        let mut shard_no = 0u32;
        while start < cfg.hosts {
            let end = start.saturating_add(per).min(cfg.hosts);
            let mut hosts = Vec::with_capacity((end - start) as usize);
            for id in start..end {
                hosts.push(HostSim::new(id, cfg.seed, columns, cfg.datapath)?);
            }
            let (tx, cmd_rx) = channel();
            let worker_cfg = cfg.clone();
            let worker_names = Arc::clone(&names);
            let report = report_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("fleetd-shard-{shard_no}"))
                .spawn(move || {
                    worker_main(
                        worker_cfg,
                        worker_names,
                        headline_idx,
                        hosts,
                        cmd_rx,
                        report,
                    );
                })
                .map_err(|e| format!("cannot spawn shard {shard_no}: {e}"))?;
            txs.push(tx);
            handles.push(handle);
            start = end;
            shard_no += 1;
        }
        Ok(Fleet {
            cfg,
            names,
            txs,
            rx,
            handles,
            state: Arc::new(SharedState::new()),
            round: 0,
            epochs_total: 0,
            points_total: 0,
        })
    }

    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Number of counter columns per host (the full registry).
    pub fn columns(&self) -> usize {
        self.names.len()
    }

    /// Shared handle for the scrape server.
    pub fn state(&self) -> Arc<SharedState> {
        Arc::clone(&self.state)
    }

    /// Drive one round: broadcast, collect every shard's report, merge,
    /// publish the scrape snapshot, and emit obs self-metrics.
    pub fn run_round(&mut self) -> Result<RoundSummary, String> {
        let _s = obs::span!("fleet.round");
        let t0 = obs::clock::now_ns();
        for tx in &self.txs {
            tx.send(Cmd::Round)
                .map_err(|_| "shard worker exited before the round".to_string())?;
        }
        let columns = self.names.len();
        let mut sums = vec![0u64; columns];
        let mut hists = vec![Log2Hist::new(); columns];
        let mut headline = Vec::with_capacity(self.cfg.hosts as usize);
        let mut epochs = 0u64;
        let mut points = 0u64;
        let mut resident = 0u64;
        let mut fastest = u64::MAX;
        let mut slowest = 0u64;
        for _ in 0..self.txs.len() {
            let r = self
                .rx
                .recv()
                .map_err(|_| "shard worker died mid-round".to_string())?;
            for (acc, v) in sums.iter_mut().zip(r.sums.iter()) {
                *acc += *v;
            }
            for (acc, h) in hists.iter_mut().zip(r.hists.iter()) {
                acc.merge(h);
            }
            headline.extend(r.headline);
            epochs += r.epochs;
            points += r.points;
            resident += r.resident_bytes;
            fastest = fastest.min(r.round_ns);
            slowest = slowest.max(r.round_ns);
        }
        headline.sort_unstable_by_key(|(id, _)| *id);
        self.round += 1;
        self.epochs_total += epochs;
        self.points_total += points;
        let round_ns = obs::clock::now_ns().saturating_sub(t0);
        let shard_lag_ns = slowest.saturating_sub(fastest.min(slowest));
        let counters = sums
            .iter()
            .zip(hists.iter())
            .map(|(s, h)| CounterStat {
                sum: *s,
                p50: h.percentile(0.50),
                p95: h.percentile(0.95),
                p99: h.percentile(0.99),
            })
            .collect();
        self.state.publish(FleetSnapshot {
            round: self.round,
            hosts: u64::from(self.cfg.hosts),
            epochs: self.epochs_total,
            points: self.points_total,
            resident_bytes: resident,
            names: Arc::clone(&self.names),
            counters,
            headline,
        });
        obs::metrics::counter_add("fleetd.rounds", 1);
        obs::metrics::counter_add("fleetd.points", points);
        obs::metrics::gauge_set("fleetd.hosts", f64::from(self.cfg.hosts));
        obs::metrics::gauge_set("fleetd.shard_lag_ns", shard_lag_ns as f64);
        obs::metrics::gauge_set("tsdb.resident_bytes", resident as f64);
        obs::metrics::observe("fleetd.round_ns", round_ns);
        Ok(RoundSummary {
            round: self.round,
            epochs,
            points,
            round_ns,
            shard_lag_ns,
            resident_bytes: resident,
        })
    }

    /// Drive collection rounds until the budget is exhausted or `stop`
    /// reports a pending shutdown. `rounds == 0` means unbounded. The
    /// stop predicate is consulted only *between* rounds, so an
    /// in-flight round always drains completely — a stop can never tear
    /// a round's counters (the shutdown anchor in `tests/shutdown.rs`).
    /// `on_round` observes each completed round; an error from it stops
    /// the loop. Returns `true` when the loop ended on a stop request
    /// rather than the round budget.
    pub fn drive(
        &mut self,
        rounds: u64,
        mut stop: impl FnMut() -> bool,
        mut on_round: impl FnMut(&RoundSummary) -> Result<(), String>,
    ) -> Result<bool, String> {
        let mut done = 0u64;
        while rounds == 0 || done < rounds {
            if stop() {
                return Ok(true);
            }
            let summary = self.run_round()?;
            done += 1;
            on_round(&summary)?;
        }
        Ok(false)
    }

    /// Concatenate every host's recorded counter stream, in host-id order
    /// (shards hold contiguous ascending ranges, so shard order is id
    /// order). Requires `FleetConfig::record_streams`.
    pub fn dump_streams(&self) -> Result<String, String> {
        let mut out = String::new();
        for tx in &self.txs {
            let (reply_tx, reply_rx) = channel();
            tx.send(Cmd::Dump(reply_tx))
                .map_err(|_| "shard worker exited before dump".to_string())?;
            out.push_str(
                &reply_rx
                    .recv()
                    .map_err(|_| "shard worker died during dump".to_string())?,
            );
        }
        Ok(out)
    }

    /// Stop the workers and join them.
    pub fn shutdown(self) {
        for tx in &self.txs {
            let _ = tx.send(Cmd::Stop);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Serve the scrape endpoint from a named background thread. The server
/// loop itself lives in `crate::server`, which stays free of concurrency
/// primitives.
pub fn spawn_server(
    state: Arc<SharedState>,
    listener: TcpListener,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("fleetd-http".to_string())
        .spawn(move || crate::server::serve(&listener, &state))
}

/// Unblock and join the scrape server: raise the stopping flag, then
/// poke `addr` with a throwaway connection so the blocking accept in
/// `server::serve` returns, observes the flag, and exits — dropping the
/// listener and closing the socket. Joining the handle makes the close
/// synchronous: when this returns, the port no longer accepts.
pub fn stop_server(state: &SharedState, addr: &str, handle: JoinHandle<()>) {
    state.set_stopping();
    let _ = TcpStream::connect(addr);
    let _ = handle.join();
}

// ---------------------------------------------------------------------
// Graceful shutdown (SIGINT / SIGTERM)
// ---------------------------------------------------------------------

/// Process-wide stop flag. The signal handler may do nothing but a
/// single atomic store (async-signal-safety), so delivery is decoupled
/// from draining: handlers set this flag, and [`Fleet::drive`] polls it
/// between rounds via [`stop_requested`].
static STOP: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// libc `signal(2)`/`raise(3)` — the workspace's only foreign calls
    /// (pinned in pflint's `no_unsafe` census): std exposes no
    /// signal-disposition API, and fleetd must drain its shards instead
    /// of aborting mid-round when the operator sends Ctrl-C or SIGTERM.
    /// The handler travels as a plain pointer-sized value, which is what
    /// `signal(2)` takes on every platform fleetd runs on.
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

/// Async-signal-safe stop handler: one atomic store, nothing else.
extern "C" fn on_stop_signal(_signum: i32) {
    STOP.store(true, Ordering::Release);
}

/// Route `SIGINT` (Ctrl-C) and `SIGTERM` to the stop flag. Call once at
/// daemon startup, before the first round. Registration failures are
/// ignored: the daemon still runs, it just dies unsolicited on signal —
/// exactly the pre-handler behaviour.
pub fn install_stop_handlers() {
    unsafe {
        signal(SIGINT, on_stop_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_stop_signal as extern "C" fn(i32) as usize);
    }
}

/// Has a stop signal (or [`request_stop`]) arrived?
pub fn stop_requested() -> bool {
    STOP.load(Ordering::Acquire)
}

/// Arm the stop flag without a signal (tests, embedders).
pub fn request_stop() {
    STOP.store(true, Ordering::Release);
}

/// Re-arm: clear a consumed stop request (test isolation).
pub fn clear_stop() {
    STOP.store(false, Ordering::Release);
}

/// Deliver `SIGTERM` to the current process — the test hook for the
/// real handler path (`tests/shutdown.rs`); libc `raise(3)` runs the
/// handler synchronously on the calling thread before returning.
pub fn raise_sigterm() {
    unsafe {
        raise(SIGTERM);
    }
}

/// Shard worker body: owns its hosts and DB, answers commands until Stop.
fn worker_main(
    cfg: FleetConfig,
    names: Arc<Vec<String>>,
    headline_idx: [usize; 2],
    mut hosts: Vec<HostSim>,
    rx: Receiver<Cmd>,
    report: Sender<ShardReport>,
) {
    let mut db = Db::new();
    let fields: Vec<&str> = names.iter().map(String::as_str).collect();
    let tags: Vec<String> = hosts.iter().map(|h| h.id.to_string()).collect();
    let series: Vec<SeriesId> = tags
        .iter()
        .map(|t| db.series_handle("fleet_host", &[("host", t.as_str())], &fields))
        .collect();
    let columns = names.len();
    let mut values: Vec<f64> = Vec::with_capacity(columns);
    let mut rounds = 0u64;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Round => {
                let t0 = obs::clock::now_ns();
                let _s = obs::span!("fleet.shard_round");
                rounds += 1;
                let mut points = 0u64;
                for (h, sid) in hosts.iter_mut().zip(series.iter()) {
                    h.advance(cfg.epochs_per_round, cfg.record_streams);
                    values.clear();
                    values.extend(h.totals.iter().map(|v| *v as f64));
                    db.ingest(*sid, h.epochs_done, &values);
                    points += 1;
                }
                if cfg.retention_rounds > 0 && rounds > cfg.retention_rounds {
                    // Drop rows older than the retention window: kept
                    // timestamps are the last `retention_rounds` rounds'
                    // epoch marks.
                    let cutoff = (rounds - cfg.retention_rounds) * cfg.epochs_per_round;
                    let _ = db.delete_range("fleet_host", 0, cutoff + 1);
                }
                let mut sums = vec![0u64; columns];
                let mut hists = vec![Log2Hist::new(); columns];
                let mut headline = Vec::with_capacity(hosts.len());
                for h in &hosts {
                    for ((s, hist), v) in sums.iter_mut().zip(hists.iter_mut()).zip(h.totals.iter())
                    {
                        *s += *v;
                        hist.record(*v);
                    }
                    headline.push((h.id, h.headline(&headline_idx)));
                }
                let done = ShardReport {
                    round_ns: obs::clock::now_ns().saturating_sub(t0),
                    epochs: cfg.epochs_per_round * hosts.len() as u64,
                    points,
                    resident_bytes: db.resident_bytes() as u64,
                    sums,
                    hists,
                    headline,
                };
                if report.send(done).is_err() {
                    return;
                }
            }
            Cmd::Dump(reply) => {
                let mut out = String::new();
                for h in &hosts {
                    out.push_str(&h.stream);
                }
                let _ = reply.send(out);
            }
            Cmd::Stop => return,
        }
    }
}
