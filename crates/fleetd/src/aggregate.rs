//! Fleet roll-ups: a mergeable log2 histogram and per-counter aggregates.
//!
//! `obs::metrics::Histogram` is process-global and has no merge API, so
//! the shards carry their own [`Log2Hist`] — same bucketing scheme (one
//! bucket per power of two), but a plain value type that merges across
//! shard reports. The coordinator folds per-shard histograms into fleet
//! percentiles (p50/p95/p99 of each counter's per-host cumulative value).
//!
//! Everything here is on the daemon surface: panic-free by construction
//! (no indexing, no unchecked division).

/// Number of log2 buckets; bucket `i` holds values in `[2^(i-1), 2^i)`
/// (bucket 0 holds zero), with the top bucket absorbing the rest.
pub const HIST_BUCKETS: usize = 64;

/// A mergeable log2 histogram over `u64` samples.
#[derive(Clone, Debug)]
pub struct Log2Hist {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Log2Hist {
    fn default() -> Log2Hist {
        Log2Hist::new()
    }
}

impl Log2Hist {
    pub fn new() -> Log2Hist {
        Log2Hist {
            counts: [0; HIST_BUCKETS],
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if let Some(c) = self.counts.get_mut(Self::bucket_of(v)) {
            *c += 1;
        }
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `q`-quantile (e.g. `0.99`), clamped to the observed min/max.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += *c;
            if cum >= rank {
                // Upper edge of bucket i, clamped into the observed range.
                let hi = if i == 0 {
                    0
                } else if i >= HIST_BUCKETS - 1 {
                    u64::MAX
                } else {
                    (1u64 << i).wrapping_sub(1)
                };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Render as an obs snapshot so `obs::prom::PromText::summary` can
    /// emit it directly.
    pub fn snapshot(&self) -> obs::metrics::HistSnapshot {
        obs::metrics::HistSnapshot {
            count: self.count,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            mean: self.mean(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// One counter's fleet-wide roll-up: the sum and the distribution of
/// per-host cumulative values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterStat {
    pub sum: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hist_is_zero() {
        let h = Log2Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentiles_clamp_to_observed_range() {
        let mut h = Log2Hist::new();
        h.record(1000);
        assert_eq!(h.percentile(0.5), 1000, "single sample is every quantile");
        h.record(1000);
        h.record(1000);
        h.record(4000);
        let p50 = h.percentile(0.5);
        assert!((1000..=1023).contains(&p50), "p50 {p50} in bucket of 1000");
        assert!(h.percentile(0.99) <= 4000);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        let mut all = Log2Hist::new();
        for v in [0u64, 1, 7, 63, 900, 1 << 40] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 5000, u64::MAX] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.percentile(q), all.percentile(q));
        }
        assert_eq!(a.snapshot().max, u64::MAX);
    }
}
