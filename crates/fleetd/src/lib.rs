//! fleetd — the continuous-profiling collector daemon ("fleet mode").
//!
//! The batch figure-runner (`crates/bench`) answers "what does one host
//! look like for one figure"; fleetd answers the paper's production pitch:
//! PathFinder-style profiling is cheap enough to run *continuously* over a
//! fleet. It advances N simulated [`simarch::Machine`]s concurrently in
//! long-lived per-shard worker loops (generalizing
//! `bench::scenario::map_scenarios`'s one-shot scoped-thread fan-out),
//! streams every host's full counter set into a per-shard columnar
//! [`tsdb::Db`] via the allocation-free `series_handle`/`ingest` path, and
//! exposes the fleet over a std-only TCP endpoint in Prometheus text
//! exposition format.
//!
//! Layering (see FLEET.md for the full architecture):
//!
//! * [`host`] — one simulated host: a small `Machine` plus cumulative
//!   counter totals in `pmu::registry::all_events()` column order;
//! * [`aggregate`] — a mergeable log2 histogram and per-counter fleet
//!   roll-ups (sum + p50/p95/p99 across hosts);
//! * [`shard`] — the only concurrency in the crate (a reviewed
//!   `concurrency-hygiene` allowlist entry): worker threads, command and
//!   report channels, the shared scrape snapshot, and the [`shard::Fleet`]
//!   coordinator;
//! * [`server`] — the scrape endpoint (`/metrics`, `/healthz`), free of
//!   concurrency primitives itself.
//!
//! Correctness anchor: with a fixed seed, the per-host counter streams are
//! byte-identical regardless of shard count — sharding is a throughput
//! knob, never a semantic one. The daemon surface is a pflint
//! `panic-freedom` root and routes every wall-clock read through
//! [`obs::clock`].

pub mod aggregate;
pub mod host;
pub mod server;
pub mod shard;

/// Configuration for one fleet run.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of simulated hosts.
    pub hosts: u32,
    /// Number of shard worker threads; hosts are split into contiguous
    /// id ranges, one range per shard.
    pub shards: u32,
    /// Fleet seed; each host derives its own stream seed from this and
    /// its id, so host streams are independent of shard assignment.
    pub seed: u64,
    /// Simulated epochs each host advances per round.
    pub epochs_per_round: u64,
    /// Keep at most this many rounds of samples per shard DB; older rows
    /// are dropped via `tsdb::Db::delete_range`. `0` disables retention.
    pub retention_rounds: u64,
    /// Record every host's counter stream as CSV text (id,ts,v0,v1,...)
    /// for the determinism tests and `Fleet::dump_streams`.
    pub record_streams: bool,
    /// Per-op datapath for every host machine. `Batched` (the default) is
    /// the staged pipeline; `Reference` is the retained per-op walk. The
    /// two are byte-identical through the PMU — the fixed-seed golden
    /// round pins that for fleet mode (`tests/golden_round.rs`).
    pub datapath: simarch::DatapathMode,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            hosts: 100,
            shards: 2,
            seed: 0xF1EE7,
            epochs_per_round: 1,
            retention_rounds: 16,
            record_streams: false,
            datapath: simarch::DatapathMode::Batched,
        }
    }
}

impl FleetConfig {
    /// Sanity-check the knobs before launching workers.
    pub fn validate(&self) -> Result<(), String> {
        if self.hosts == 0 {
            return Err("fleet needs at least one host".to_string());
        }
        if self.shards == 0 {
            return Err("fleet needs at least one shard".to_string());
        }
        if self.epochs_per_round == 0 {
            return Err("epochs_per_round must be positive".to_string());
        }
        Ok(())
    }
}
