//! # tiering — TPP and Colloid page placement
//!
//! The paper's Case 7 (§5.8) uses PathFinder to analyse and improve memory
//! tiering: **TPP** (Transparent Page Placement, ASPLOS'23) promotes hot
//! pages from CXL to local DRAM and demotes cold pages under local pressure;
//! **Colloid** (SOSP'24) gates promotion on balancing per-tier access
//! latencies; and the paper's own extension, **dynamic TPP+Colloid**, feeds
//! Colloid the latency of the *dominant request class* (DRd/RFO/HWPF, chosen
//! from PFBuilder's CHA miss ratios) instead of a fixed DRd latency.
//!
//! The engine consumes the per-epoch page-heat stream the simulator
//! produces ([`simarch::EpochResult::page_heat`]) and emits migrations that
//! are applied through [`simarch::Machine::migrate_page`].

use std::collections::HashMap;

use simarch::MemNode;

/// A single page-migration decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// Address-space / thread id (the simulator uses the core index).
    pub asid: u16,
    pub vpage: u64,
    pub to: MemNode,
}

/// Per-page heat with exponential decay across epochs — the software
/// equivalent of TPP's active/inactive LRU lists.
#[derive(Debug, Default)]
pub struct HeatTracker {
    heat: HashMap<(u16, u64), f64>,
    /// Multiplicative decay applied each epoch (TPP's aging).
    pub decay: f64,
}

impl HeatTracker {
    pub fn new() -> Self {
        HeatTracker {
            heat: HashMap::new(),
            decay: 0.5,
        }
    }

    /// Fold one epoch's heat samples in (after decaying history).
    pub fn observe(&mut self, samples: &[(u16, u64, u32)]) {
        for h in self.heat.values_mut() {
            *h *= self.decay;
        }
        for &(asid, vpage, n) in samples {
            *self.heat.entry((asid, vpage)).or_insert(0.0) += n as f64;
        }
        // Drop cold entries to bound memory.
        self.heat.retain(|_, h| *h >= 0.25);
    }

    /// Current heat of a page.
    pub fn heat(&self, asid: u16, vpage: u64) -> f64 {
        self.heat.get(&(asid, vpage)).copied().unwrap_or(0.0)
    }

    /// All tracked pages hotter than `threshold`, hottest first
    /// (deterministic: ties broken by key).
    pub fn hot_pages(&self, threshold: f64) -> Vec<(u16, u64, f64)> {
        let mut v: Vec<(u16, u64, f64)> = self
            .heat
            .iter()
            .filter(|(_, &h)| h >= threshold)
            .map(|(&(a, p), &h)| (a, p, h))
            .collect();
        v.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        v
    }

    /// All tracked pages colder than `threshold`, coldest first.
    pub fn cold_pages(&self, threshold: f64) -> Vec<(u16, u64, f64)> {
        let mut v: Vec<(u16, u64, f64)> = self
            .heat
            .iter()
            .filter(|(_, &h)| h < threshold)
            .map(|(&(a, p), &h)| (a, p, h))
            .collect();
        v.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        v
    }

    pub fn tracked(&self) -> usize {
        self.heat.len()
    }
}

/// TPP configuration.
#[derive(Clone, Copy, Debug)]
pub struct TppConfig {
    /// Heat (accesses per epoch, decayed) above which a CXL page is hot.
    pub promote_threshold: f64,
    /// Pages promoted per epoch at most (migration-bandwidth cap).
    pub promote_budget: usize,
    /// Local-DRAM page budget; exceeding it triggers demotion of the
    /// coldest local pages (TPP's watermark-based reclaim).
    pub local_budget_pages: usize,
    /// Heat below which a local page may be demoted.
    pub demote_threshold: f64,
}

impl Default for TppConfig {
    fn default() -> Self {
        TppConfig {
            promote_threshold: 4.0,
            promote_budget: 256,
            local_budget_pages: usize::MAX,
            demote_threshold: 0.5,
        }
    }
}

/// The TPP engine.
#[derive(Debug)]
pub struct Tpp {
    pub cfg: TppConfig,
    pub tracker: HeatTracker,
    local_pages: HashMap<(u16, u64), ()>,
    promoted: u64,
    demoted: u64,
}

impl Tpp {
    pub fn new(cfg: TppConfig) -> Self {
        Tpp {
            cfg,
            tracker: HeatTracker::new(),
            local_pages: HashMap::new(),
            promoted: 0,
            demoted: 0,
        }
    }

    /// Total promotions/demotions decided so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.promoted, self.demoted)
    }

    /// Fold in an epoch's heat and decide migrations. `node_of` reports the
    /// current residency of a page (`None` if unmapped).
    pub fn epoch(
        &mut self,
        heat: &[(u16, u64, u32)],
        node_of: &dyn Fn(u16, u64) -> Option<MemNode>,
    ) -> Vec<Migration> {
        self.tracker.observe(heat);
        let mut out = Vec::new();
        // Promotion: hottest CXL pages first, up to the budget.
        for (asid, vpage, _h) in self.tracker.hot_pages(self.cfg.promote_threshold) {
            if out.len() >= self.cfg.promote_budget {
                break;
            }
            if matches!(node_of(asid, vpage), Some(n) if n.is_cxl()) {
                out.push(Migration {
                    asid,
                    vpage,
                    to: MemNode::LocalDram,
                });
                self.local_pages.insert((asid, vpage), ());
                self.promoted += 1;
            }
        }
        // Track local residency for pages that were always local.
        for &(asid, vpage, _) in heat {
            if matches!(node_of(asid, vpage), Some(MemNode::LocalDram)) {
                self.local_pages.insert((asid, vpage), ());
            }
        }
        // Demotion under local pressure.
        if self.local_pages.len() > self.cfg.local_budget_pages {
            let mut excess = self.local_pages.len() - self.cfg.local_budget_pages;
            for (asid, vpage, _h) in self.tracker.cold_pages(self.cfg.demote_threshold) {
                if excess == 0 {
                    break;
                }
                if self.local_pages.contains_key(&(asid, vpage))
                    && matches!(node_of(asid, vpage), Some(MemNode::LocalDram))
                {
                    out.push(Migration {
                        asid,
                        vpage,
                        to: MemNode::CxlDram(0),
                    });
                    self.local_pages.remove(&(asid, vpage));
                    self.demoted += 1;
                    excess -= 1;
                }
            }
        }
        out
    }
}

/// Colloid's latency-balancing gate (SOSP'24): promotion toward the local
/// tier continues only while it reduces the traffic-weighted latency
/// imbalance `p_local·L_local` vs `p_cxl·L_cxl`.
#[derive(Clone, Copy, Debug)]
pub struct Colloid {
    /// Hysteresis band: imbalances within this fraction are left alone.
    pub band: f64,
}

impl Default for Colloid {
    fn default() -> Self {
        Colloid { band: 0.1 }
    }
}

/// Colloid's verdict for the current epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Balance {
    /// Local tier is comparatively unloaded: keep promoting.
    PromoteToLocal,
    /// Within the hysteresis band: hold placement.
    Hold,
    /// Local tier is the bottleneck: demote instead.
    DemoteToCxl,
}

impl Colloid {
    /// Decide from per-tier observed latencies (cycles) and request shares
    /// (fractions summing to ≈1).
    pub fn decide(
        &self,
        local_lat: f64,
        cxl_lat: f64,
        local_share: f64,
        cxl_share: f64,
    ) -> Balance {
        let l = local_lat * local_share;
        let c = cxl_lat * cxl_share;
        if l + c == 0.0 {
            return Balance::Hold;
        }
        let imbalance = (c - l) / (l + c).max(f64::EPSILON);
        if imbalance > self.band {
            Balance::PromoteToLocal
        } else if imbalance < -self.band {
            Balance::DemoteToCxl
        } else {
            Balance::Hold
        }
    }
}

/// Per-request-class latency observations, the input PathFinder supplies
/// (PFEstimator's per-class local/CXL latencies keyed by PFBuilder's
/// dominant-class selection).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassLatencies {
    /// (local, cxl) latency per class, cycles.
    pub drd: (f64, f64),
    pub rfo: (f64, f64),
    pub hwpf: (f64, f64),
    /// Miss-ratio weight of each class (how much CHA traffic it carries).
    pub drd_weight: f64,
    pub rfo_weight: f64,
    pub hwpf_weight: f64,
}

impl ClassLatencies {
    /// The dominant class and its (local, cxl) latencies — the paper's
    /// dynamic TPP+Colloid picks "the most frequently accessed request type
    /// during the current execution phase".
    pub fn dominant(&self) -> (&'static str, (f64, f64)) {
        let mut best = ("DRd", self.drd, self.drd_weight);
        if self.rfo_weight > best.2 {
            best = ("RFO", self.rfo, self.rfo_weight);
        }
        if self.hwpf_weight > best.2 {
            best = ("HWPF", self.hwpf, self.hwpf_weight);
        }
        (best.0, best.1)
    }
}

/// TPP gated by Colloid. `dynamic = false` reproduces plain TPP+Colloid
/// (fixed DRd latency); `dynamic = true` is the paper's PathFinder-assisted
/// variant.
#[derive(Debug)]
pub struct ColloidTpp {
    pub tpp: Tpp,
    pub colloid: Colloid,
    pub dynamic: bool,
}

impl ColloidTpp {
    pub fn new(cfg: TppConfig, dynamic: bool) -> Self {
        ColloidTpp {
            tpp: Tpp::new(cfg),
            colloid: Colloid::default(),
            dynamic,
        }
    }

    /// Decide migrations for one epoch given the class latencies PathFinder
    /// measured and the CXL traffic share.
    pub fn epoch(
        &mut self,
        heat: &[(u16, u64, u32)],
        node_of: &dyn Fn(u16, u64) -> Option<MemNode>,
        lat: &ClassLatencies,
        cxl_share: f64,
    ) -> Vec<Migration> {
        let (local_l, cxl_l) = if self.dynamic {
            lat.dominant().1
        } else {
            lat.drd
        };
        let verdict = self
            .colloid
            .decide(local_l, cxl_l, 1.0 - cxl_share, cxl_share);
        match verdict {
            Balance::PromoteToLocal => self.tpp.epoch(heat, node_of),
            Balance::Hold => {
                self.tpp.tracker.observe(heat);
                Vec::new()
            }
            Balance::DemoteToCxl => {
                self.tpp.tracker.observe(heat);
                // Demote the coldest known-local pages, bounded.
                let mut out = Vec::new();
                for (asid, vpage, _h) in self.tpp.tracker.cold_pages(f64::MAX) {
                    if out.len() >= 32 {
                        break;
                    }
                    if matches!(node_of(asid, vpage), Some(MemNode::LocalDram)) {
                        out.push(Migration {
                            asid,
                            vpage,
                            to: MemNode::CxlDram(0),
                        });
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on_cxl(_a: u16, _p: u64) -> Option<MemNode> {
        Some(MemNode::CxlDram(0))
    }

    fn on_local(_a: u16, _p: u64) -> Option<MemNode> {
        Some(MemNode::LocalDram)
    }

    #[test]
    fn heat_decays_and_accumulates() {
        let mut t = HeatTracker::new();
        t.observe(&[(0, 1, 8)]);
        assert_eq!(t.heat(0, 1), 8.0);
        t.observe(&[]);
        assert_eq!(t.heat(0, 1), 4.0);
        t.observe(&[(0, 1, 2)]);
        assert_eq!(t.heat(0, 1), 4.0);
    }

    #[test]
    fn cold_entries_are_garbage_collected() {
        let mut t = HeatTracker::new();
        t.observe(&[(0, 1, 1)]);
        for _ in 0..10 {
            t.observe(&[]);
        }
        assert_eq!(t.tracked(), 0);
    }

    #[test]
    fn tpp_promotes_hot_cxl_pages() {
        let mut tpp = Tpp::new(TppConfig::default());
        let heat: Vec<(u16, u64, u32)> = vec![(0, 10, 100), (0, 11, 1)];
        let migs = tpp.epoch(&heat, &on_cxl);
        assert_eq!(
            migs,
            vec![Migration {
                asid: 0,
                vpage: 10,
                to: MemNode::LocalDram
            }]
        );
        assert_eq!(tpp.stats().0, 1);
    }

    #[test]
    fn tpp_respects_promote_budget() {
        let cfg = TppConfig {
            promote_budget: 3,
            ..Default::default()
        };
        let mut tpp = Tpp::new(cfg);
        let heat: Vec<(u16, u64, u32)> = (0..10).map(|p| (0u16, p as u64, 50u32)).collect();
        let migs = tpp.epoch(&heat, &on_cxl);
        assert_eq!(migs.len(), 3);
    }

    #[test]
    fn tpp_promotes_hottest_first() {
        let cfg = TppConfig {
            promote_budget: 1,
            ..Default::default()
        };
        let mut tpp = Tpp::new(cfg);
        let migs = tpp.epoch(&[(0, 1, 5), (0, 2, 500)], &on_cxl);
        assert_eq!(migs[0].vpage, 2);
    }

    #[test]
    fn tpp_does_not_promote_local_pages() {
        let mut tpp = Tpp::new(TppConfig::default());
        let migs = tpp.epoch(&[(0, 10, 100)], &on_local);
        assert!(migs.is_empty());
    }

    #[test]
    fn tpp_demotes_under_local_pressure() {
        let cfg = TppConfig {
            local_budget_pages: 2,
            ..Default::default()
        };
        let mut tpp = Tpp::new(cfg);
        // Three warm local pages; one must be demoted (the coldest).
        let heat: Vec<(u16, u64, u32)> = vec![(0, 1, 1), (0, 2, 1), (0, 3, 1)];
        tpp.epoch(&heat, &on_local);
        // Let them cool below the demote threshold, keeping pressure
        // (heat 1.0 → 0.5 → 0.25 with the default decay).
        tpp.epoch(&[], &on_local);
        let migs = tpp.epoch(&[], &on_local);
        assert_eq!(migs.len(), 1);
        assert!(migs[0].to.is_cxl());
        assert_eq!(tpp.stats().1, 1);
    }

    #[test]
    fn colloid_direction_follows_latency_imbalance() {
        let c = Colloid::default();
        assert_eq!(c.decide(200.0, 700.0, 0.5, 0.5), Balance::PromoteToLocal);
        assert_eq!(c.decide(700.0, 200.0, 0.5, 0.5), Balance::DemoteToCxl);
        assert_eq!(c.decide(500.0, 500.0, 0.5, 0.5), Balance::Hold);
        assert_eq!(c.decide(0.0, 0.0, 0.5, 0.5), Balance::Hold);
    }

    #[test]
    fn colloid_weighs_traffic_share() {
        let c = Colloid::default();
        // CXL is slow but carries almost no traffic → no point promoting.
        assert_eq!(c.decide(200.0, 700.0, 0.99, 0.01), Balance::DemoteToCxl);
    }

    #[test]
    fn dominant_class_selection() {
        let lat = ClassLatencies {
            drd: (200.0, 700.0),
            rfo: (250.0, 800.0),
            hwpf: (150.0, 650.0),
            drd_weight: 0.2,
            rfo_weight: 0.1,
            hwpf_weight: 0.7,
        };
        let (name, (l, c)) = lat.dominant();
        assert_eq!(name, "HWPF");
        assert_eq!((l, c), (150.0, 650.0));
    }

    #[test]
    fn colloid_tpp_gates_promotion() {
        let mut ct = ColloidTpp::new(TppConfig::default(), false);
        let lat = ClassLatencies {
            drd: (700.0, 200.0),
            drd_weight: 1.0,
            ..Default::default()
        };
        // Local slower than CXL → no promotions even for hot CXL pages.
        let migs = ct.epoch(&[(0, 1, 100)], &on_cxl, &lat, 0.5);
        assert!(migs.is_empty());
        // Flip the latencies → promotion resumes.
        let lat2 = ClassLatencies {
            drd: (200.0, 700.0),
            drd_weight: 1.0,
            ..Default::default()
        };
        let migs2 = ct.epoch(&[(0, 1, 100)], &on_cxl, &lat2, 0.5);
        assert_eq!(migs2.len(), 1);
    }

    #[test]
    fn dynamic_variant_uses_dominant_class() {
        let mut ct = ColloidTpp::new(TppConfig::default(), true);
        // DRd says demote, but the dominant HWPF class says promote.
        let lat = ClassLatencies {
            drd: (700.0, 200.0),
            hwpf: (200.0, 700.0),
            drd_weight: 0.1,
            hwpf_weight: 0.9,
            ..Default::default()
        };
        let migs = ct.epoch(&[(0, 1, 100)], &on_cxl, &lat, 0.5);
        assert_eq!(migs.len(), 1, "dynamic variant must follow HWPF latencies");
    }
}
