//! Property tests for the pflint lexer: lexing then reassembling must be
//! byte-identical for any input, token offsets must tile the source with
//! no gaps or overlaps, and line numbers must be nondecreasing. Cases are
//! built from fragments chosen to stress every classification boundary —
//! braces in strings, fences on raw strings, nested block comments, char
//! literals vs lifetimes — plus a corpus pass over every real `.rs` file
//! in the repository.

use std::path::{Path, PathBuf};

use pflint::lexer::{lex, reassemble, TokKind};
use proptest::prelude::*;

/// Source fragments concatenated in random order. Each is valid on its
/// own; juxtaposition produces arbitrary (often non-compiling) Rust,
/// which the lossless lexer must still round-trip.
const FRAGMENTS: &[&str] = &[
    "fn f() { let x = 1; }\n",
    "let close = \"}\";\n",
    "let open = \"{ not a block\";\n",
    "let esc = \"quote \\\" and brace } inside\";\n",
    "let raw = r\"no escapes \\ here\";\n",
    "let fenced = r#\"quote \" and hash # inside\"#;\n",
    "let double = r##\"ends with \"# not yet\"##;\n",
    "let bytes = b\"\\xff{\";\n",
    "let braw = br#\"byte raw \"# \n",
    "let c = '{';\n",
    "let q = '\\'';\n",
    "let bs = '\\\\';\n",
    "let nl = '\\n';\n",
    "let bb = b'\\xff';\n",
    "fn g<'a>(x: &'a str) -> &'static str { x }\n",
    "let _: &'_ u8 = &0;\n",
    "// line comment with \"quote, {brace}, and /* opener\n",
    "/// doc comment mentioning */ and unsafe\n",
    "//! inner doc with 'char' and r#\"raw\"#\n",
    "/* block } comment */\n",
    "/* outer /* nested { */ still outer */\n",
    "let hex = 0xFF_u64;\n",
    "let float = 1_000.25e-3f64;\n",
    "let r#type = 7;\n",
    "let π = \"λ{}\";\n",
    "match x { 0 => {} _ => () }\n",
    "\n",
    "\t  \r\n",
    "x += y / z;\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lex_then_reassemble_is_byte_identical(
        idxs in proptest::collection::vec(0usize..FRAGMENTS.len(), 1..48),
    ) {
        let src: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        let toks = lex(&src);
        prop_assert_eq!(reassemble(&toks), src.clone(), "round-trip diverged");

        // Tokens tile the source exactly: contiguous offsets, full
        // coverage, and 1-based nondecreasing line numbers.
        let mut off = 0usize;
        let mut line = 1usize;
        for t in &toks {
            prop_assert_eq!(t.start, off, "gap or overlap at byte {}", off);
            prop_assert!(!t.text.is_empty(), "empty token at byte {}", off);
            prop_assert!(
                t.line >= line,
                "line went backwards: {} after {}",
                t.line,
                line
            );
            line = t.line;
            off += t.text.len();
        }
        prop_assert_eq!(off, src.len(), "tokens do not cover the source");
    }

    #[test]
    fn masking_never_leaves_literal_text_in_code(
        idxs in proptest::collection::vec(0usize..FRAGMENTS.len(), 1..32),
    ) {
        // Every byte of a non-code token must be classified as such: the
        // concatenation of code-only tokens must contain no quote-fenced
        // fragment bodies. Cheap invariant: code tokens never *start*
        // inside a literal, so no code token text contains a raw `"` that
        // the lexer produced from a string body.
        let src: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        for t in lex(&src) {
            if t.kind.is_code() && t.kind != TokKind::Punct {
                prop_assert!(
                    !t.text.contains('"'),
                    "code token carries literal text: {:?}",
                    t
                );
            }
        }
    }
}

/// Every `.rs` file in the repository — workspace crates, integration
/// tests, examples, the vendored crates, and pflint's own fixture trees —
/// must survive lex/reassemble byte-identically.
#[test]
fn repository_corpus_round_trips() {
    let root = repo_root();
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples", "vendor"] {
        collect_rs(&root.join(top), &mut files);
    }
    assert!(
        files.len() >= 40,
        "corpus suspiciously small ({} files) — walker broken?",
        files.len()
    );
    for path in files {
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let toks = lex(&src);
        assert_eq!(
            reassemble(&toks),
            src,
            "lex/reassemble diverged on {}",
            path.display()
        );
    }
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("pflint lives two levels below the repo root")
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}
