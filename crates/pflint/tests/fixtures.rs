//! Fixture tests: seeded violations for every analysis are detected and
//! reported with file:line, while suppressed/test-only/hooked equivalents
//! in the `allowed` tree produce zero findings. The `bad` tree also seeds
//! the misparse class the old line-regex engine got wrong — braces and
//! rule keywords inside strings, char literals, and block comments — and
//! pins exact anchors for the lexer-based engine.

use std::path::{Path, PathBuf};

use pflint::{rules, Finding};

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(which)
}

/// Assert a finding exists for `rule` at `file` (suffix match) and `line`.
fn assert_found(findings: &[Finding], rule: &str, file: &str, line: usize) {
    assert!(
        findings
            .iter()
            .any(|f| f.rule == rule && f.line == line && ends_with(&f.file, file)),
        "expected [{rule}] at {file}:{line}; got:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn ends_with(path: &Path, suffix: &str) -> bool {
    path.to_string_lossy().ends_with(suffix)
}

#[test]
fn bad_fixtures_trip_every_determinism_rule() {
    let findings = pflint::run_determinism(&fixture_root("bad"));
    assert_found(&findings, rules::HASH_ITERATION, "sim_state.rs", 2);
    assert_found(&findings, rules::WALL_CLOCK, "sim_state.rs", 3);
    // The fabric switch module is inside the determinism scan too.
    assert_found(&findings, rules::WALL_CLOCK, "rogue_switch.rs", 11);
    assert_found(&findings, rules::HASH_ITERATION, "sim_state.rs", 6);
    assert_found(&findings, rules::WALL_CLOCK, "sim_state.rs", 11);
    assert_found(&findings, rules::OS_ENTROPY, "sim_state.rs", 12);
    assert_found(&findings, rules::UNWRAP_IN_IO, "trace.rs", 3);
    assert_found(&findings, rules::HASH_ITERATION, "db.rs", 2);
    assert_found(&findings, rules::UNWRAP_IN_IO, "db.rs", 5);
}

#[test]
fn unwrap_rule_covers_fault_windows_and_bench_writers() {
    let findings = pflint::run_determinism(&fixture_root("bad"));
    // simarch/faults.rs window validation must return Err, not panic.
    assert_found(&findings, rules::UNWRAP_IN_IO, "faults.rs", 4);
    // bench CSV/JSON writers must propagate I/O errors.
    assert_found(&findings, rules::UNWRAP_IN_IO, "bench/src/lib.rs", 3);
    assert_found(&findings, rules::UNWRAP_IN_IO, "bench/src/lib.rs", 5);
}

#[test]
fn misparse_regressions_braces_and_keywords_in_literals() {
    // sneaky.rs seeds needles inside a block comment (lines 6-7), a string
    // with braces (line 8), and a char literal (line 9) — none may fire.
    // Line 14 pairs a REAL Instant::now with a suppression marker that
    // lives inside a string literal; the old engine read the raw line and
    // treated it as suppressed.
    let findings = pflint::run_determinism(&fixture_root("bad"));
    assert_found(&findings, rules::WALL_CLOCK, "sneaky.rs", 14);
    for line in [6, 7, 8, 9] {
        assert!(
            !findings
                .iter()
                .any(|f| ends_with(&f.file, "sneaky.rs") && f.line == line),
            "masked needle at sneaky.rs:{line} must not fire: {findings:?}"
        );
    }
}

#[test]
fn bad_fixtures_trip_pmu_consistency() {
    let findings = pflint::run_pmu_consistency(&fixture_root("bad"));
    assert_found(&findings, rules::PMU_VARIANT_UNKNOWN, "pmu_refs.rs", 6);
    assert_found(&findings, rules::PMU_EVENT_UNKNOWN, "pmu_refs.rs", 7);
    // The valid CoreEvent::InstRetired reference on line 5 must NOT fire.
    assert!(
        !findings.iter().any(|f| f.line == 5),
        "valid variant flagged: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_invariant_hook_check() {
    let findings = pflint::run_invariant_hooks(&fixture_root("bad"));
    assert_found(&findings, rules::INVARIANT_HOOK_MISSING, "sim_state.rs", 7);
    assert_eq!(
        findings.len(),
        1,
        "exactly one hookless module seeded: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_obs_choke_point() {
    let findings = pflint::run_obs_choke_point(&fixture_root("bad"));
    // Unmarked Instant::now inside clock.rs.
    assert_found(&findings, rules::OBS_CHOKE_POINT, "clock.rs", 4);
    // Instant named outside clock.rs.
    assert_found(&findings, rules::OBS_CHOKE_POINT, "span.rs", 2);
    // More than one call site in the choke point.
    assert!(
        findings.iter().any(|f| f.message.contains("found 2")),
        "call-site count not enforced: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_module_registration() {
    let findings = pflint::run_module_registration(&fixture_root("bad"));
    assert_found(
        &findings,
        rules::MODULE_COUNTER_REGISTRATION,
        "rogue_module.rs",
        5,
    );
    // The fabric switch stage is audited like any other SimModule.
    assert_found(
        &findings,
        rules::MODULE_COUNTER_REGISTRATION,
        "rogue_switch.rs",
        6,
    );
    assert_eq!(
        findings.len(),
        2,
        "exactly two unregistered modules seeded: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_fault_plan_determinism() {
    let findings = pflint::run_fault_plan_determinism(&fixture_root("bad"));
    assert_found(
        &findings,
        rules::FAULT_PLAN_DETERMINISM,
        "bad_fault_plan.rs",
        4,
    );
    // Fault-plan-free files in the same tree must stay out of scope —
    // including sneaky.rs, whose thread_rng lives inside a string.
    assert!(
        findings
            .iter()
            .all(|f| ends_with(&f.file, "bad_fault_plan.rs")),
        "rule leaked beyond the fault-plan file: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_hot_path_alloc() {
    let findings = pflint::run_hot_path_alloc(&fixture_root("bad"));
    // Annotated materializer bodies.
    assert_found(&findings, rules::HOT_PATH_ALLOC, "materializer.rs", 6);
    assert_found(&findings, rules::HOT_PATH_ALLOC, "materializer.rs", 7);
    // The allocation AFTER a close-brace-in-string — the old brace counter
    // ended the body at line 13's `"}"` and never saw it.
    assert_found(&findings, rules::HOT_PATH_ALLOC, "materializer.rs", 14);
    // Annotated tsdb ingest body.
    assert_found(&findings, rules::HOT_PATH_ALLOC, "db.rs", 11);
    assert_found(&findings, rules::HOT_PATH_ALLOC, "db.rs", 12);
    // An annotation with no function underneath is itself a finding.
    assert_found(&findings, rules::HOT_PATH_ALLOC, "dangling_hot.rs", 2);
    // Event-wheel hot paths: format! in schedule, collect in cascade.
    assert_found(&findings, rules::HOT_PATH_ALLOC, "wheel.rs", 6);
    assert_found(&findings, rules::HOT_PATH_ALLOC, "wheel.rs", 12);
    // Batch datapath passes: a Vec born inside the L1 pass body, a
    // collect in the retire pass.
    assert_found(&findings, rules::HOT_PATH_ALLOC, "batch_pass.rs", 6);
    assert_found(&findings, rules::HOT_PATH_ALLOC, "batch_pass.rs", 15);
    // Cold-path formatting (`describe`, `series_key`) stays out of scope.
    assert_eq!(
        findings.len(),
        10,
        "rule leaked beyond hot bodies: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_concurrency_hygiene() {
    let findings = pflint::run_concurrency_hygiene(&fixture_root("bad"));
    assert_found(&findings, rules::CONCURRENCY_HYGIENE, "rogue_threads.rs", 2);
    assert_found(&findings, rules::CONCURRENCY_HYGIENE, "rogue_threads.rs", 4);
    assert_found(&findings, rules::CONCURRENCY_HYGIENE, "rogue_threads.rs", 5);
    assert_found(&findings, rules::CONCURRENCY_HYGIENE, "rogue_threads.rs", 6);
    assert_found(&findings, rules::CONCURRENCY_HYGIENE, "rogue_threads.rs", 7);
    // fleetd concurrency anywhere but shard.rs is a finding too.
    assert_found(&findings, rules::CONCURRENCY_HYGIENE, "exporter.rs", 2);
    assert_found(&findings, rules::CONCURRENCY_HYGIENE, "exporter.rs", 5);
    assert_found(&findings, rules::CONCURRENCY_HYGIENE, "exporter.rs", 6);
    assert!(
        findings
            .iter()
            .all(|f| ends_with(&f.file, "rogue_threads.rs") || ends_with(&f.file, "exporter.rs")),
        "rule leaked beyond the seeded files: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_panic_freedom() {
    let findings = pflint::run_panic_freedom(&fixture_root("bad"));
    assert_found(&findings, rules::PANIC_FREEDOM, "daemon.rs", 3); // unwrap
    assert_found(&findings, rules::PANIC_FREEDOM, "daemon.rs", 4); // indexing
    assert_found(&findings, rules::PANIC_FREEDOM, "daemon.rs", 5); // division
    assert_found(&findings, rules::PANIC_FREEDOM, "daemon.rs", 6); // assert!
                                                                   // The fleetd daemon surface is a panic-freedom root as well.
    assert_found(&findings, rules::PANIC_FREEDOM, "collector.rs", 3); // unwrap
    assert_found(&findings, rules::PANIC_FREEDOM, "collector.rs", 4); // indexing
    assert_found(&findings, rules::PANIC_FREEDOM, "collector.rs", 5); // division
    assert_found(&findings, rules::PANIC_FREEDOM, "collector.rs", 6); // assert!
    assert!(
        findings
            .iter()
            .all(|f| ends_with(&f.file, "daemon.rs") || ends_with(&f.file, "collector.rs")),
        "rule leaked beyond the seeded files: {findings:?}"
    );
}

#[test]
fn allowed_fixtures_are_clean() {
    let findings = pflint::run(&fixture_root("allowed"));
    assert!(
        findings.is_empty(),
        "suppressions/hooks/test-exemption should silence everything:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn rule_filter_restricts_findings() {
    let only = vec![rules::PANIC_FREEDOM.to_string()];
    let findings = pflint::run_filtered(&fixture_root("bad"), &only);
    assert!(!findings.is_empty());
    assert!(
        findings.iter().all(|f| f.rule == rules::PANIC_FREEDOM),
        "--rule must drop every other family: {findings:?}"
    );
}

#[test]
fn json_output_round_trips_and_baselines_the_bad_tree() {
    let root = fixture_root("bad");
    let findings = pflint::run(&root);
    assert!(!findings.is_empty());
    let json = pflint::render_json(&root, &findings);
    // Validates against the documented pflint-findings-v1 schema via the
    // obs JSON parser.
    let keys = pflint::parse_baseline(&json).expect("schema-valid JSON");
    assert!(!keys.is_empty());
    // A baseline written from the current findings gates nothing.
    assert!(
        pflint::new_vs_baseline(&root, &findings, &keys).is_empty(),
        "self-baseline must suppress every finding"
    );
    // Paths in the JSON are root-relative with forward slashes.
    assert!(
        json.contains("\"file\": \"crates/obs/src/daemon.rs\""),
        "{json}"
    );
}

#[test]
fn findings_render_as_file_line_rule_message() {
    let findings = pflint::run_determinism(&fixture_root("bad"));
    let f = findings
        .iter()
        .find(|f| f.rule == rules::OS_ENTROPY && ends_with(&f.file, "sim_state.rs"))
        .expect("entropy finding");
    let rendered = f.to_string();
    assert!(
        rendered.contains("sim_state.rs:12"),
        "bad anchor: {rendered}"
    );
    assert!(
        rendered.contains("[os-entropy]"),
        "bad rule tag: {rendered}"
    );
}
