//! Fixture tests: seeded violations for every analysis are detected and
//! reported with file:line, while suppressed/test-only/hooked equivalents
//! in the `allowed` tree produce zero findings.

use std::path::{Path, PathBuf};

use pflint::{rules, Finding};

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(which)
}

/// Assert a finding exists for `rule` at `file` (suffix match) and `line`.
fn assert_found(findings: &[Finding], rule: &str, file: &str, line: usize) {
    assert!(
        findings
            .iter()
            .any(|f| f.rule == rule && f.line == line && ends_with(&f.file, file)),
        "expected [{rule}] at {file}:{line}; got:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn ends_with(path: &Path, suffix: &str) -> bool {
    path.to_string_lossy().ends_with(suffix)
}

#[test]
fn bad_fixtures_trip_every_determinism_rule() {
    let findings = pflint::run_determinism(&fixture_root("bad"));
    assert_found(&findings, rules::HASH_ITERATION, "sim_state.rs", 2);
    assert_found(&findings, rules::WALL_CLOCK, "sim_state.rs", 3);
    assert_found(&findings, rules::HASH_ITERATION, "sim_state.rs", 6);
    assert_found(&findings, rules::WALL_CLOCK, "sim_state.rs", 11);
    assert_found(&findings, rules::OS_ENTROPY, "sim_state.rs", 12);
    assert_found(&findings, rules::UNWRAP_IN_IO, "trace.rs", 3);
    assert_found(&findings, rules::HASH_ITERATION, "db.rs", 2);
    assert_found(&findings, rules::UNWRAP_IN_IO, "db.rs", 5);
}

#[test]
fn bad_fixtures_trip_pmu_consistency() {
    let findings = pflint::run_pmu_consistency(&fixture_root("bad"));
    assert_found(&findings, rules::PMU_VARIANT_UNKNOWN, "pmu_refs.rs", 6);
    assert_found(&findings, rules::PMU_EVENT_UNKNOWN, "pmu_refs.rs", 7);
    // The valid CoreEvent::InstRetired reference on line 5 must NOT fire.
    assert!(
        !findings.iter().any(|f| f.line == 5),
        "valid variant flagged: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_invariant_hook_check() {
    let findings = pflint::run_invariant_hooks(&fixture_root("bad"));
    assert_found(&findings, rules::INVARIANT_HOOK_MISSING, "sim_state.rs", 7);
    assert_eq!(
        findings.len(),
        1,
        "exactly one hookless module seeded: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_obs_choke_point() {
    let findings = pflint::run_obs_choke_point(&fixture_root("bad"));
    // Unmarked Instant::now inside clock.rs.
    assert_found(&findings, rules::OBS_CHOKE_POINT, "clock.rs", 4);
    // Instant named outside clock.rs.
    assert_found(&findings, rules::OBS_CHOKE_POINT, "span.rs", 2);
    // More than one call site in the choke point.
    assert!(
        findings.iter().any(|f| f.message.contains("found 2")),
        "call-site count not enforced: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_module_registration() {
    let findings = pflint::run_module_registration(&fixture_root("bad"));
    assert_found(
        &findings,
        rules::MODULE_COUNTER_REGISTRATION,
        "rogue_module.rs",
        5,
    );
    assert_eq!(
        findings.len(),
        1,
        "exactly one unregistered module seeded: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_fault_plan_determinism() {
    let findings = pflint::run_fault_plan_determinism(&fixture_root("bad"));
    assert_found(
        &findings,
        rules::FAULT_PLAN_DETERMINISM,
        "bad_fault_plan.rs",
        4,
    );
    // Fault-plan-free files in the same tree must stay out of scope.
    assert!(
        findings
            .iter()
            .all(|f| ends_with(&f.file, "bad_fault_plan.rs")),
        "rule leaked beyond the fault-plan file: {findings:?}"
    );
}

#[test]
fn bad_fixtures_trip_ingest_hot_path() {
    let findings = pflint::run_ingest_hot_path(&fixture_root("bad"));
    // `fn ingest` body in the tsdb fixture.
    assert_found(&findings, rules::INGEST_HOT_PATH, "db.rs", 10);
    assert_found(&findings, rules::INGEST_HOT_PATH, "db.rs", 11);
    // `fn ingest_path_map` body in the materializer fixture.
    assert_found(&findings, rules::INGEST_HOT_PATH, "materializer.rs", 4);
    assert_found(&findings, rules::INGEST_HOT_PATH, "materializer.rs", 5);
    // String work outside ingest bodies (`load`, `series_key`, `describe`)
    // is cold-path and must stay out of scope.
    assert_eq!(
        findings.len(),
        4,
        "rule leaked beyond ingest fn bodies: {findings:?}"
    );
}

#[test]
fn allowed_fixtures_are_clean() {
    let findings = pflint::run(&fixture_root("allowed"));
    assert!(
        findings.is_empty(),
        "suppressions/hooks/test-exemption should silence everything:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn findings_render_as_file_line_rule_message() {
    let findings = pflint::run_determinism(&fixture_root("bad"));
    let f = findings
        .iter()
        .find(|f| f.rule == rules::OS_ENTROPY && ends_with(&f.file, "sim_state.rs"))
        .expect("entropy finding");
    let rendered = f.to_string();
    assert!(
        rendered.contains("sim_state.rs:12"),
        "bad anchor: {rendered}"
    );
    assert!(
        rendered.contains("[os-entropy]"),
        "bad rule tag: {rendered}"
    );
}
