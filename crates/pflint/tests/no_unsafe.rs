//! Workspace-wide census: no `unsafe` code outside `vendor/`.
//!
//! The census lexes every file, so `unsafe` appearing in strings or
//! comments (pflint's own needle tables, doc prose) does not count —
//! only an `unsafe` identifier token in code position does. The
//! sanctioned exceptions are pinned here so any new use must be added
//! deliberately: `crates/tsdb/tests/alloc_free.rs`, whose `GlobalAlloc`
//! implementation cannot be written without `unsafe`, and
//! `crates/fleetd/src/shard.rs`, whose graceful-shutdown path calls
//! libc `signal(2)`/`raise(3)` because std exposes no signal API and
//! the daemon must drain shards instead of aborting on SIGTERM.

use std::path::{Path, PathBuf};

use pflint::lexer::{lex, TokKind};

/// Files permitted to contain `unsafe`, as forward-slash paths relative
/// to the repository root.
const SANCTIONED: &[&str] = &[
    "crates/fleetd/src/shard.rs",
    "crates/tsdb/tests/alloc_free.rs",
];

#[test]
fn workspace_has_no_unsafe_outside_vendor() {
    let root = repo_root();
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    assert!(files.len() >= 30, "census walker found too few files");

    let mut offenders = Vec::new();
    let mut sanctioned_seen = Vec::new();
    for path in &files {
        let rel = rel_str(&root, path);
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        for tok in lex(&src) {
            if tok.kind == TokKind::Ident && tok.text == "unsafe" {
                if SANCTIONED.contains(&rel.as_str()) {
                    sanctioned_seen.push(rel.clone());
                } else {
                    offenders.push(format!("{rel}:{}", tok.line));
                }
            }
        }
    }

    assert!(
        offenders.is_empty(),
        "unsafe code outside vendor/ (extend SANCTIONED only with a \
         reviewed rationale):\n  {}",
        offenders.join("\n  ")
    );
    // The allowlist must not outlive the code it excuses.
    for sanctioned in SANCTIONED {
        assert!(
            sanctioned_seen.iter().any(|s| s == sanctioned),
            "{sanctioned} is sanctioned but no longer uses unsafe — \
             remove it from SANCTIONED"
        );
    }
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("pflint lives two levels below the repo root")
        .to_path_buf()
}

fn rel_str(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            let skip = p
                .file_name()
                .is_some_and(|n| n == "target" || n == "fixtures" || n == "vendor");
            if !skip {
                collect_rs(&p, out);
            }
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}
