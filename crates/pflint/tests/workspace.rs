//! Workspace-level gate: the real source tree must be lint-clean, and the
//! PMU registry the lint trusts must itself round-trip coherently.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().expect("workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let findings = pflint::run(&workspace_root());
    assert!(
        findings.is_empty(),
        "pflint found {} problem(s) in the workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn registry_round_trip_is_coherent() {
    use std::collections::BTreeSet;
    let events = pmu::registry::all_events();
    assert!(!events.is_empty());

    let mut names = BTreeSet::new();
    for e in &events {
        // Unique, non-empty perf-style name.
        assert!(!e.name.is_empty());
        assert!(
            names.insert(e.name.clone()),
            "duplicate registry name {}",
            e.name
        );
        // Non-empty family description and a derivable unit.
        assert!(!e.description.is_empty(), "no description for {}", e.name);
        assert_eq!(
            e.unit,
            pmu::registry::unit_of(&e.name),
            "unit drift for {}",
            e.name
        );
        // The name must resolve back to the same entry.
        let back = pmu::registry::lookup(&e.name).expect("lookup round-trip");
        assert_eq!(back.name, e.name);
        assert_eq!(back.pmu, e.pmu, "bank drift for {}", e.name);
    }
}
