//! The structural layer on top of the token stream: everything pflint's
//! rules need to reason about a source file without a full parse.
//!
//! A [`SourceFile`] is loaded once per file and precomputes:
//!
//! * **Masked lines** — the source with every comment, string, and char
//!   literal blanked to spaces (newlines preserved). Rule needles match
//!   against these, so `"Instant::now"` in a string literal or a rule
//!   keyword in a block comment can never produce a phantom finding, and
//!   a `{` inside a string can never desynchronize body extraction.
//! * **Item-scoped `#[cfg(test)]` ranges** — the old engine treated the
//!   first `#[cfg(test)]` to end-of-file as test code; this one tracks the
//!   actual item extent, so a mid-file test module no longer exempts the
//!   production code after it.
//! * **Suppressions** — `// pflint::allow(<rule>)` markers, read from
//!   comment *tokens* (same line, or standalone on the line above).
//! * **Functions** — token-accurate body spans via bracket matching, plus
//!   the `// pflint::hot` annotation that opts a body into the
//!   `hot-path-alloc` rule.
//! * **String literals, indexing sites, division sites** — token-level
//!   facts for the PMU-consistency and `panic-freedom` rules.

use crate::lexer::{lex, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One function found in the file. Lines are 1-based and inclusive.
#[derive(Clone, Debug)]
pub struct FnSpan {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Line of the opening `{` (0 when the fn has no body).
    pub body_start: usize,
    /// Line of the matching `}` (0 when the fn has no body).
    pub body_end: usize,
    /// Annotated `// pflint::hot` (see STATIC_ANALYSIS.md).
    pub hot: bool,
}

/// A loaded, lexed, and indexed source file.
pub struct SourceFile {
    /// Masked lines (comments/strings blanked), 0-indexed.
    pub lines: Vec<String>,
    /// Original lines, 0-indexed.
    pub raw_lines: Vec<String>,
    /// Per-line: is this line inside an item-scoped `#[cfg(test)]`?
    test_lines: Vec<bool>,
    /// (0-based line) -> rules suppressed on that line.
    suppressed: BTreeMap<usize, BTreeSet<String>>,
    /// Every function with a body, in source order (nested fns included).
    pub fns: Vec<FnSpan>,
    /// Standalone `// pflint::hot` annotation lines (1-based) that did not
    /// attach to any function — almost certainly a mistake.
    pub dangling_hot: Vec<usize>,
    /// (0-based line, literal content) for every string literal.
    strings: Vec<(usize, String)>,
    /// 0-based lines containing an indexing expression (`expr[...]`).
    index_lines: Vec<usize>,
    /// 0-based lines containing a `/` or `%` with a non-literal divisor.
    div_lines: Vec<usize>,
}

impl SourceFile {
    pub fn load(path: &Path) -> std::io::Result<SourceFile> {
        Ok(SourceFile::parse(&std::fs::read_to_string(path)?))
    }

    /// Build the full index from source text.
    pub fn parse(text: &str) -> SourceFile {
        let tokens = lex(text);
        let n_lines = text.split('\n').count();

        let lines = masked_lines(text, &tokens);
        let raw_lines: Vec<String> = text.split('\n').map(|l| l.to_string()).collect();
        let suppressed = collect_suppressions(&tokens);
        let test_lines = collect_test_lines(&tokens, n_lines);
        let hot_lines = collect_hot_lines(&tokens);
        let (fns, dangling_hot) = collect_fns(&tokens, &raw_lines, &hot_lines);
        let strings = collect_strings(&tokens);
        let (index_lines, div_lines) = collect_panic_sites(&tokens);

        SourceFile {
            lines,
            raw_lines,
            test_lines,
            suppressed,
            fns,
            dangling_hot,
            strings,
            index_lines,
            div_lines,
        }
    }

    /// Is 0-based line `idx` inside an item-scoped `#[cfg(test)]`?
    pub fn is_test_line(&self, idx: usize) -> bool {
        self.test_lines.get(idx).copied().unwrap_or(false)
    }

    /// Is `rule` suppressed on 0-based line `idx`? Markers count on the
    /// offending line itself or standalone on the line above.
    pub fn is_suppressed(&self, idx: usize, rule: &str) -> bool {
        self.suppressed.get(&idx).is_some_and(|s| s.contains(rule))
    }

    /// String literals as `(0-based line, content)`.
    pub fn string_literals(&self) -> &[(usize, String)] {
        &self.strings
    }

    /// 0-based lines with `expr[...]` indexing (can panic on out-of-range).
    pub fn index_lines(&self) -> &[usize] {
        &self.index_lines
    }

    /// 0-based lines with `/` or `%` whose divisor is neither a numeric
    /// literal nor provably float arithmetic (can panic on zero).
    pub fn div_lines(&self) -> &[usize] {
        &self.div_lines
    }
}

/// Word-boundary-aware needle search on one masked line. When the needle
/// starts (resp. ends) with an identifier character, the match must not be
/// preceded (resp. followed) by one — so `assert!` never matches inside
/// `debug_assert!`, and `HashMap` never matches `MyHashMapLike`. Pass
/// `open_end = true` to allow the match to be a prefix of a longer word
/// (`Atomic` matching `AtomicU64`).
pub fn contains_word(hay: &str, needle: &str, open_end: bool) -> bool {
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let (first, last) = match (needle.bytes().next(), needle.bytes().last()) {
        (Some(f), Some(l)) => (f, l),
        _ => return false,
    };
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        from = at + 1;
        if is_word(first) && at > 0 && is_word(bytes[at - 1]) {
            continue;
        }
        let end = at + needle.len();
        if !open_end && is_word(last) && end < bytes.len() && is_word(bytes[end]) {
            continue;
        }
        return true;
    }
    false
}

/// Blank every non-code token (comments, strings, chars) to spaces,
/// preserving newlines, then split into lines.
fn masked_lines(text: &str, tokens: &[Token<'_>]) -> Vec<String> {
    let mut masked = text.as_bytes().to_vec();
    for t in tokens {
        if t.kind.is_code() {
            continue;
        }
        for b in &mut masked[t.start..t.start + t.text.len()] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    // Masking writes only ASCII spaces over complete tokens, so the result
    // is valid UTF-8 whenever the input was.
    String::from_utf8_lossy(&masked)
        .split('\n')
        .map(|l| l.to_string())
        .collect()
}

/// Significant tokens: everything that is code structure (not whitespace,
/// not comments). String/char literals stay in as opaque atoms so their
/// contents can never be mistaken for structure.
fn significant<'a, 'b>(tokens: &'b [Token<'a>]) -> Vec<&'b Token<'a>> {
    tokens
        .iter()
        .filter(|t| t.kind != TokKind::Whitespace && !t.kind.is_comment())
        .collect()
}

const ALLOW_MARKER: &str = "pflint::allow(";
const HOT_MARKER: &str = "// pflint::hot";

fn collect_suppressions(tokens: &[Token<'_>]) -> BTreeMap<usize, BTreeSet<String>> {
    let mut out: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    let mut last_code_line = 0usize; // no code yet
    for t in tokens {
        if t.kind == TokKind::Whitespace {
            continue;
        }
        if !t.kind.is_comment() {
            last_code_line = t.line + t.text.matches('\n').count();
            continue;
        }
        let standalone = last_code_line != t.line;
        let end_line = t.line + t.text.matches('\n').count();
        let mut from = 0;
        while let Some(pos) = t.text[from..].find(ALLOW_MARKER) {
            let at = from + pos;
            from = at + ALLOW_MARKER.len();
            let rest = &t.text[from..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            if rule.is_empty() {
                continue;
            }
            let marker_line = t.line + t.text[..at].matches('\n').count();
            // 1-based -> 0-based.
            out.entry(marker_line - 1).or_default().insert(rule.clone());
            if standalone {
                out.entry(end_line).or_default().insert(rule);
            }
        }
    }
    out
}

/// Standalone `// pflint::hot` comment lines (1-based).
fn collect_hot_lines(tokens: &[Token<'_>]) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    let mut last_code_line = 0usize;
    for t in tokens {
        if t.kind == TokKind::Whitespace {
            continue;
        }
        if !t.kind.is_comment() {
            last_code_line = t.line + t.text.matches('\n').count();
            continue;
        }
        if t.kind == TokKind::LineComment
            && last_code_line != t.line
            && (t.text.trim_end() == HOT_MARKER || t.text.starts_with("// pflint::hot "))
        {
            out.insert(t.line);
        }
    }
    out
}

/// Mark every line covered by an item-scoped `#[cfg(test)]`: from the
/// attribute through the item's closing `}` (or terminating `;`).
fn collect_test_lines(tokens: &[Token<'_>], n_lines: usize) -> Vec<bool> {
    let s = significant(tokens);
    let mut test = vec![false; n_lines];
    let mut j = 0;
    while j < s.len() {
        if s[j].text != "#" || j + 1 >= s.len() || s[j + 1].text != "[" {
            j += 1;
            continue;
        }
        let attr_start = j;
        // Find the matching `]` of the attribute.
        let mut depth = 0i32;
        let mut k = j + 1;
        while k < s.len() {
            match s[k].text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let is_cfg_test = {
            let body = &s[j + 2..k.min(s.len())];
            body.iter().any(|t| t.text == "cfg") && body.iter().any(|t| t.text == "test")
        };
        j = (k + 1).min(s.len());
        if !is_cfg_test {
            continue;
        }
        // Skip any further attributes on the same item.
        while j + 1 < s.len() && s[j].text == "#" && s[j + 1].text == "[" {
            let mut d = 0i32;
            let mut m = j + 1;
            while m < s.len() {
                match s[m].text {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            j = (m + 1).min(s.len());
        }
        // The item extends to the matching `}` of its first top-level `{`,
        // or to a `;` before any brace opens (e.g. `#[cfg(test)] mod t;`).
        let (mut dp, mut db, mut dbr) = (0i32, 0i32, 0i32);
        let mut entered = false;
        let mut end = j;
        while end < s.len() {
            match s[end].text {
                "(" => dp += 1,
                ")" => dp -= 1,
                "[" => dbr += 1,
                "]" => dbr -= 1,
                "{" => {
                    db += 1;
                    entered = true;
                }
                "}" => {
                    db -= 1;
                    if entered && db == 0 {
                        break;
                    }
                }
                ";" if dp == 0 && dbr == 0 && db == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let start_line = s[attr_start].line;
        let end_line = if end < s.len() {
            s[end].line + s[end].text.matches('\n').count()
        } else {
            n_lines
        };
        for t in test
            .iter_mut()
            .take(end_line.min(n_lines))
            .skip(start_line - 1)
        {
            *t = true;
        }
        j = (end + 1).min(s.len());
    }
    test
}

/// Extract every `fn` with a body, attaching `// pflint::hot` annotations
/// by scanning upward over blank lines, comments, and single-line
/// attributes from the `fn` line.
fn collect_fns(
    tokens: &[Token<'_>],
    raw_lines: &[String],
    hot_lines: &BTreeSet<usize>,
) -> (Vec<FnSpan>, Vec<usize>) {
    let s = significant(tokens);
    let mut fns = Vec::new();
    let mut consumed: BTreeSet<usize> = BTreeSet::new();
    for (j, tok) in s.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.text != "fn" {
            continue;
        }
        let name = s[j + 1..]
            .iter()
            .find(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.to_string())
            .unwrap_or_default();
        // Find the body's `{`: the first top-level one before a `;`.
        let mut depth = 0i32;
        let mut body_open: Option<usize> = None;
        for (k, t) in s.iter().enumerate().skip(j + 1) {
            match t.text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body_open = Some(k);
                    break;
                }
                ";" if depth == 0 => break,
                "}" if depth == 0 => break, // ran off the enclosing item
                _ => {}
            }
        }
        let Some(open) = body_open else { continue };
        let mut braces = 0i32;
        let mut close = open;
        for (k, t) in s.iter().enumerate().skip(open) {
            match t.text {
                "{" => braces += 1,
                "}" => {
                    braces -= 1;
                    if braces == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        // Upward scan for the hot annotation.
        let mut hot = false;
        let mut l = tok.line; // 1-based; examine l-1 upward
        while l > 1 {
            let above = raw_lines[l - 2].trim();
            if hot_lines.contains(&(l - 1)) {
                hot = true;
                consumed.insert(l - 1);
                break;
            }
            let skip = above.is_empty()
                || above.starts_with("//")
                || (above.starts_with("#[") && above.ends_with("]"));
            if !skip {
                break;
            }
            l -= 1;
        }
        fns.push(FnSpan {
            name,
            line: tok.line,
            body_start: s[open].line,
            body_end: s[close].line + s[close].text.matches('\n').count(),
            hot,
        });
    }
    let dangling = hot_lines.difference(&consumed).copied().collect();
    (fns, dangling)
}

/// String literal contents with their 0-based start line.
fn collect_strings(tokens: &[Token<'_>]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for t in tokens {
        let content = match t.kind {
            TokKind::Str => {
                let inner = t.text.strip_prefix('b').unwrap_or(t.text);
                let inner = inner.strip_prefix('"').unwrap_or(inner);
                inner.strip_suffix('"').unwrap_or(inner).to_string()
            }
            TokKind::RawStr => {
                let Some(q) = t.text.find('"') else { continue };
                let hashes = t.text[..q].matches('#').count();
                let inner = &t.text[q + 1..];
                let end = inner.len().saturating_sub(1 + hashes);
                inner.get(..end).unwrap_or("").to_string()
            }
            _ => continue,
        };
        out.push((t.line - 1, content));
    }
    out
}

/// Keywords that may legitimately precede a `[` (array literals, types).
const NON_INDEX_PREV: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// Is this token a float literal (`1.5`, `1e9`, `2.5E-3`)?
fn is_float_literal(t: &Token<'_>) -> bool {
    t.kind == TokKind::Num
        && !t.text.starts_with("0x")
        && !t.text.starts_with("0X")
        && (t.text.contains('.') || t.text.contains('e') || t.text.contains('E'))
}

/// Token-level panic-surface detection: indexing expressions and
/// non-literal divisions. Returns `(index_lines, div_lines)`, 0-based.
fn collect_panic_sites(tokens: &[Token<'_>]) -> (Vec<usize>, Vec<usize>) {
    let s = significant(tokens);
    let mut index_lines = BTreeSet::new();
    let mut div_lines = BTreeSet::new();
    for (k, t) in s.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        let prev = if k > 0 { Some(s[k - 1]) } else { None };
        match t.text {
            "[" => {
                // `expr[...]`: the previous token ends an expression —
                // an identifier (not a keyword), `)`, or `]`.
                let indexes = prev.is_some_and(|p| {
                    (p.kind == TokKind::Ident && !NON_INDEX_PREV.contains(&p.text))
                        || p.text == ")"
                        || p.text == "]"
                });
                if indexes {
                    index_lines.insert(t.line - 1);
                }
            }
            "/" | "%" => {
                // Float arithmetic cannot panic; integer division by a
                // non-literal can. Heuristic: skip when the left operand
                // is an `as f64`/`as f32` cast or a float literal, or the
                // divisor is a numeric literal.
                let lhs_float = prev.is_some_and(|p| {
                    (p.kind == TokKind::Ident && (p.text == "f64" || p.text == "f32"))
                        || is_float_literal(p)
                });
                if lhs_float {
                    continue;
                }
                // Skip the `=` of a compound `/=` when finding the divisor.
                let mut r = k + 1;
                if s.get(r).is_some_and(|t| t.text == "=") {
                    r += 1;
                }
                let rhs_literal = s.get(r).is_some_and(|t| t.kind == TokKind::Num);
                if !rhs_literal {
                    div_lines.insert(t.line - 1);
                }
            }
            _ => {}
        }
    }
    (
        index_lines.into_iter().collect(),
        div_lines.into_iter().collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_strings_and_comments() {
        let src = "let a = \"HashMap { b\"; /* Instant::now */ let c = 1; // thread_rng\n";
        let f = SourceFile::parse(src);
        let line = &f.lines[0];
        assert!(!line.contains("HashMap"));
        assert!(!line.contains("Instant"));
        assert!(!line.contains("thread_rng"));
        assert!(line.contains("let a ="));
        assert!(line.contains("let c = 1;"));
        assert_eq!(line.len(), src.trim_end_matches('\n').len());
    }

    #[test]
    fn cfg_test_is_item_scoped_not_to_eof() {
        let src = "fn prod_a() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() {}\n\
                   }\n\
                   fn prod_b() {}\n";
        let f = SourceFile::parse(src);
        assert!(!f.is_test_line(0), "code before the module is production");
        assert!(f.is_test_line(1), "the attribute line itself");
        assert!(f.is_test_line(3), "inside the module");
        assert!(f.is_test_line(4), "the closing brace");
        assert!(
            !f.is_test_line(5),
            "code after a mid-file test module is production again"
        );
    }

    #[test]
    fn cfg_test_on_single_items_and_semicolon_items() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {}\n";
        let f = SourceFile::parse(src);
        assert!(f.is_test_line(1));
        assert!(!f.is_test_line(2));

        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct T { x: u32 }\nfn prod() {}\n";
        let f = SourceFile::parse(src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn braces_in_strings_do_not_break_fn_extraction() {
        let src = "fn a() {\n    let s = \"} trailing\";\n    body();\n}\nfn b() {}\n";
        let f = SourceFile::parse(src);
        let a = f.fns.iter().find(|f| f.name == "a").unwrap();
        assert_eq!((a.body_start, a.body_end), (1, 4));
        let b = f.fns.iter().find(|f| f.name == "b").unwrap();
        assert_eq!(b.line, 5);
    }

    #[test]
    fn hot_annotation_attaches_through_docs_and_attrs() {
        let src = "// pflint::hot\n\
                   /// Doc line.\n\
                   #[inline]\n\
                   pub fn tick() {\n}\n\
                   fn cold() {}\n";
        let f = SourceFile::parse(src);
        let tick = f.fns.iter().find(|f| f.name == "tick").unwrap();
        assert!(tick.hot);
        let cold = f.fns.iter().find(|f| f.name == "cold").unwrap();
        assert!(!cold.hot);
        assert!(f.dangling_hot.is_empty());
    }

    #[test]
    fn dangling_hot_annotation_is_reported() {
        let src = "// pflint::hot\nstruct NotAFn;\n";
        let f = SourceFile::parse(src);
        assert_eq!(f.dangling_hot, vec![1]);
    }

    #[test]
    fn suppression_same_line_and_standalone_above() {
        let src = "use std::time::Instant; // pflint::allow(wall-clock)\n\
                   // pflint::allow(os-entropy)\n\
                   let r = thread_rng();\n\
                   let s = SystemTime::now();\n";
        let f = SourceFile::parse(src);
        assert!(f.is_suppressed(0, "wall-clock"));
        assert!(f.is_suppressed(2, "os-entropy"));
        assert!(!f.is_suppressed(3, "os-entropy"));
        assert!(!f.is_suppressed(3, "wall-clock"));
    }

    #[test]
    fn marker_text_inside_a_string_is_not_a_suppression() {
        let src = "let s = \"pflint::allow(wall-clock)\";\nlet t = Instant::now();\n";
        let f = SourceFile::parse(src);
        assert!(!f.is_suppressed(1, "wall-clock"));
    }

    #[test]
    fn string_literals_are_extracted_with_lines() {
        let src = "a(\"unc_m_cas_count.rd\");\nb(r#\"raw \"lit\"\"#);\nc(b\"bytes\");\n";
        let f = SourceFile::parse(src);
        let lits = f.string_literals();
        assert!(lits.contains(&(0, "unc_m_cas_count.rd".to_string())));
        assert!(lits.contains(&(1, "raw \"lit\"".to_string())));
        assert!(lits.contains(&(2, "bytes".to_string())));
    }

    #[test]
    fn index_sites_flag_indexing_but_not_types_or_literals() {
        let src = "let a = xs[i];\n\
                   let b: [u8; 4] = [0; 4];\n\
                   let c = vec![1, 2];\n\
                   let d = (e)[0];\n\
                   #[derive(Debug)]\n\
                   return [1];\n";
        let f = SourceFile::parse(src);
        assert_eq!(f.index_lines(), &[0, 3]);
    }

    #[test]
    fn div_sites_skip_floats_and_literal_divisors() {
        let src = "let a = x / y;\n\
                   let b = x as f64 / y as f64;\n\
                   let c = x / 8;\n\
                   let d = 1.5 / z;\n\
                   t %= n;\n";
        let f = SourceFile::parse(src);
        assert_eq!(f.div_lines(), &[0, 4]);
    }

    #[test]
    fn word_boundaries_in_needle_search() {
        assert!(contains_word("assert!(x)", "assert!", false));
        assert!(!contains_word("debug_assert!(x)", "assert!", false));
        assert!(contains_word("let m: HashMap<u32,u32>", "HashMap", false));
        assert!(!contains_word("MyHashMapLike", "HashMap", false));
        assert!(contains_word("AtomicU64::new(0)", "Atomic", true));
        assert!(!contains_word("AtomicU64::new(0)", "Atomic", false));
        assert!(contains_word("x.unwrap()", ".unwrap()", false));
    }
}
