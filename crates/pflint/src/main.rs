//! pflint CLI: run the workspace static-analysis pass and report findings.
//!
//! Usage: `cargo run -p pflint [-- <workspace-root>]`. With no argument the
//! workspace root is derived from the crate's own manifest directory, so
//! the binary works from any cwd inside the repo.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = root.canonicalize().unwrap_or(root);
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "pflint: {} does not look like a workspace root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let findings = pflint::run(&root);
    for f in &findings {
        // Report paths relative to the root for stable, clickable output.
        let rel = f.file.strip_prefix(&root).unwrap_or(&f.file);
        println!("{}:{}: [{}] {}", rel.display(), f.line, f.rule, f.message);
    }
    if findings.is_empty() {
        println!(
            "pflint: clean — determinism, PMU consistency, invariant hooks, \
             the obs clock choke point, fault-plan determinism, and the \
             ingest hot path all pass"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("pflint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
