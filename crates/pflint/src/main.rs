//! pflint CLI: run the workspace static-analysis pass and report findings.
//!
//! ```text
//! cargo run -p pflint [-- [ROOT] [OPTIONS]]
//!
//! OPTIONS:
//!   --format text|json       output format (default: text)
//!   --rule <id>              run only this rule (repeatable)
//!   --baseline <file>        suppress findings recorded in <file>; exit 1
//!                            only on findings NOT in the baseline
//!   --write-baseline <file>  write current findings to <file> as JSON and
//!                            exit 0
//! ```
//!
//! With no ROOT the workspace root is derived from the crate's own manifest
//! directory, so the binary works from any cwd inside the repo. The JSON
//! format is the `pflint-findings-v1` schema documented in
//! STATIC_ANALYSIS.md; `--baseline` matches on `(rule, file, message)` so
//! unrelated edits that shift a legacy finding's line do not churn CI.

use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: PathBuf,
    format: Format,
    rules: Vec<String>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("pflint: {msg}");
    eprintln!(
        "usage: pflint [ROOT] [--format text|json] [--rule ID]... \
         [--baseline FILE] [--write-baseline FILE]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        format: Format::Text,
        rules: Vec::new(),
        baseline: None,
        write_baseline: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut saw_root = false;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--format" => {
                let v = args.get(i + 1).ok_or("--format needs a value")?;
                cli.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
                i += 2;
            }
            "--rule" => {
                let v = args.get(i + 1).ok_or("--rule needs a value")?;
                if !pflint::rules::ALL.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown rule `{v}` (known: {})",
                        pflint::rules::ALL.join(", ")
                    ));
                }
                cli.rules.push(v.clone());
                i += 2;
            }
            "--baseline" => {
                let v = args.get(i + 1).ok_or("--baseline needs a value")?;
                cli.baseline = Some(PathBuf::from(v));
                i += 2;
            }
            "--write-baseline" => {
                let v = args.get(i + 1).ok_or("--write-baseline needs a value")?;
                cli.write_baseline = Some(PathBuf::from(v));
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            root if !saw_root => {
                cli.root = PathBuf::from(root);
                saw_root = true;
                i += 1;
            }
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => return usage(&msg),
    };
    let root = cli.root.canonicalize().unwrap_or(cli.root);
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "pflint: {} does not look like a workspace root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let findings = pflint::run_filtered(&root, &cli.rules);

    if let Some(path) = &cli.write_baseline {
        let json = pflint::render_json(&root, &findings);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("pflint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "pflint: wrote {} finding(s) to baseline {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Under --baseline only findings absent from the committed baseline
    // gate; pre-existing ones are reported as suppressed in text mode.
    let gating = match &cli.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("pflint: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let keys = match pflint::parse_baseline(&text) {
                Ok(k) => k,
                Err(e) => {
                    eprintln!("pflint: {e}");
                    return ExitCode::from(2);
                }
            };
            pflint::new_vs_baseline(&root, &findings, &keys)
        }
        None => findings.clone(),
    };

    match cli.format {
        Format::Json => print!("{}", pflint::render_json(&root, &gating)),
        Format::Text => {
            for f in &gating {
                println!(
                    "{}:{}: [{}] {}",
                    pflint::rel_str(&root, &f.file),
                    f.line,
                    f.rule,
                    f.message
                );
            }
            let suppressed = findings.len() - gating.len();
            if gating.is_empty() {
                match (suppressed, cli.rules.is_empty()) {
                    (0, true) => println!(
                        "pflint: clean — determinism, PMU consistency, invariant hooks, \
                         the obs clock choke point, fault-plan determinism, hot-path \
                         allocations, concurrency hygiene, and panic freedom all pass"
                    ),
                    (0, false) => {
                        println!("pflint: clean under --rule {}", cli.rules.join(", "))
                    }
                    (n, _) => println!("pflint: clean ({n} baseline-suppressed finding(s))"),
                }
            }
        }
    }
    if gating.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("pflint: {} finding(s)", gating.len());
        ExitCode::FAILURE
    }
}
