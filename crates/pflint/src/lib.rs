//! pflint — the PathFinder workspace static-analysis pass.
//!
//! The engine lexes every source file into a lossless token stream
//! ([`lexer`]) and builds a structural index on top ([`source`]): masked
//! code lines (comments and string literals blanked), item-scoped
//! `#[cfg(test)]` ranges, token-accurate function bodies, suppression
//! markers, and token-level panic surfaces. Every rule below matches
//! against that index, so string literals, block comments, and braces
//! inside strings can never produce phantom findings or desynchronized
//! body extraction — the failure class of the line-regex engine this
//! replaced.
//!
//! Ten analyses keep the simulator honest:
//!
//! 1. **Determinism lint** ([`run_determinism`]): model code (`simarch`,
//!    `core`, `tsdb`) must be bit-reproducible run-to-run, so hash-ordered
//!    containers, wall-clock reads, and OS entropy are findings unless
//!    explicitly suppressed. Input-facing modules additionally ban
//!    `unwrap`/`expect`/`panic!` (`unwrap-in-io-paths`).
//! 2. **PMU-counter consistency** ([`run_pmu_consistency`]): every counter
//!    referenced in `core`, `bench` and `tiering` — as a typed enum variant
//!    or as a perf-style name string — must resolve against the `pmu`
//!    registry (existence, bank, unit, description).
//! 3. **Invariant-hook verification** ([`run_invariant_hooks`]): every
//!    `simarch` module declaring a queue-bearing field (`FifoServer`,
//!    `Coverage`, `BoundedWindow`) must register an `impl Invariants for`
//!    hook, so the epoch-boundary conservation audit covers all flows.
//! 4. **Module counter registration** ([`run_module_registration`]): every
//!    `impl SimModule for` in `simarch` must route its `counters()` list
//!    through `crate::module::registered`, which pins each advertised name
//!    to the `pmu` registry.
//! 5. **Observability choke point** ([`run_obs_choke_point`]): the `obs`
//!    crate is the only sanctioned home for wall-clock reads, and inside it
//!    `Instant` may appear only in `clock.rs`, with exactly one
//!    `Instant::now` call site carrying a `pflint::allow(wall-clock)`
//!    marker. Everything else must go through `obs::clock::now_ns`.
//! 6. **Fault-plan determinism** ([`run_fault_plan_determinism`]): any file
//!    that builds or applies a `FaultPlan` must derive its schedule from an
//!    explicit seed — OS entropy and wall-clock reads are findings even in
//!    test code, so injected anomalies replay bit-identically (FAULTS.md).
//! 7. **Hot-path allocations** ([`run_hot_path_alloc`]): any function
//!    annotated with a standalone `// pflint::hot` comment must stay free
//!    of string/Vec-growth allocations — the static side of the
//!    allocation-free steady-state guarantee (PERFORMANCE.md). This
//!    generalizes the retired `ingest-hot-path` rule, which hardcoded two
//!    files; the annotation now travels with the function.
//! 8. **Concurrency hygiene** ([`run_concurrency_hygiene`]): threads,
//!    locks, atomics, channels, and `unsafe` are confined to the
//!    sanctioned modules ([`CONCURRENCY_ALLOWLIST`]); fleetd's sharded
//!    runtime lives behind exactly one audited door
//!    (`crates/fleetd/src/shard.rs`).
//! 9. **Panic freedom** ([`run_panic_freedom`]): service-facing modules
//!    (the fleetd daemon surface and `crates/obs/src`) must not contain
//!    panic paths — `unwrap`/`expect`, panic-family macros, unchecked
//!    indexing, or division by a non-literal divisor.
//! 10. **Dangling hot annotations** (folded into `hot-path-alloc`): a
//!     `// pflint::hot` comment that does not precede a function is
//!     reported rather than silently ignored.
//!
//! Suppression: append `// pflint::allow(<rule>)` to the offending line, or
//! place it alone on the line above. Each suppression silences exactly one
//! rule on exactly one line, and markers are only honored inside real
//! comments (one inside a string literal is inert).
//!
//! The lint is still textual by design — it runs in milliseconds with no
//! dependencies beyond `pmu` (the registry ground truth) and `obs` (whose
//! minimal JSON parser reads the committed baseline) and needs no nightly
//! compiler hooks. Test code (item-scoped `#[cfg(test)]`) is exempt from
//! the determinism, unwrap, and panic-freedom rules; fault-plan
//! determinism and concurrency hygiene apply everywhere.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod source;

use source::{contains_word, SourceFile};

pub mod rules {
    //! Stable rule identifiers, usable in `pflint::allow(...)` comments.
    pub const HASH_ITERATION: &str = "hashmap-iteration";
    pub const WALL_CLOCK: &str = "wall-clock";
    pub const OS_ENTROPY: &str = "os-entropy";
    pub const UNWRAP_IN_IO: &str = "unwrap-in-io-paths";
    pub const PMU_EVENT_UNKNOWN: &str = "pmu-event-unknown";
    pub const PMU_VARIANT_UNKNOWN: &str = "pmu-variant-unknown";
    pub const INVARIANT_HOOK_MISSING: &str = "invariant-hook-missing";
    pub const OBS_CHOKE_POINT: &str = "obs-choke-point";
    pub const MODULE_COUNTER_REGISTRATION: &str = "module-counter-registration";
    pub const FAULT_PLAN_DETERMINISM: &str = "fault-plan-determinism";
    pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
    pub const CONCURRENCY_HYGIENE: &str = "concurrency-hygiene";
    pub const PANIC_FREEDOM: &str = "panic-freedom";

    pub const ALL: &[&str] = &[
        HASH_ITERATION,
        WALL_CLOCK,
        OS_ENTROPY,
        UNWRAP_IN_IO,
        PMU_EVENT_UNKNOWN,
        PMU_VARIANT_UNKNOWN,
        INVARIANT_HOOK_MISSING,
        OBS_CHOKE_POINT,
        MODULE_COUNTER_REGISTRATION,
        FAULT_PLAN_DETERMINISM,
        HOT_PATH_ALLOC,
        CONCURRENCY_HYGIENE,
        PANIC_FREEDOM,
    ];
}

/// One reported problem, anchored to `file:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which determinism rules apply to one crate (per-crate configuration).
#[derive(Clone, Debug)]
pub struct CrateRules {
    /// Path relative to the workspace root, e.g. `"crates/simarch/src"`.
    pub rel_path: &'static str,
    /// Determinism rules enforced under that path.
    pub rules: &'static [&'static str],
}

/// The default per-crate determinism configuration. Model code gets the
/// full set; the trace/config/tsdb input paths ban fresh unwraps outright;
/// the fault-plan builder and the bench harness/writers (the files whose
/// failures reach users as truncated CSVs or dead worker threads) ban
/// panics on their non-test paths.
pub fn determinism_config() -> Vec<CrateRules> {
    use rules::*;
    vec![
        CrateRules {
            rel_path: "crates/simarch/src",
            rules: &[HASH_ITERATION, WALL_CLOCK, OS_ENTROPY],
        },
        CrateRules {
            rel_path: "crates/core/src",
            rules: &[HASH_ITERATION, WALL_CLOCK, OS_ENTROPY],
        },
        CrateRules {
            rel_path: "crates/tsdb/src",
            rules: &[HASH_ITERATION, WALL_CLOCK, OS_ENTROPY, UNWRAP_IN_IO],
        },
        // The figure binaries share artefacts with the model runs; a clock
        // or entropy read there would silently vary regenerated CSVs.
        CrateRules {
            rel_path: "crates/bench/src",
            rules: &[WALL_CLOCK, OS_ENTROPY],
        },
        // The observability layer itself: every clock read must route
        // through the clock.rs choke point (see `run_obs_choke_point`).
        CrateRules {
            rel_path: "crates/obs/src",
            rules: &[HASH_ITERATION, WALL_CLOCK, OS_ENTROPY],
        },
        // The fleet daemon: fixed seed → identical counter streams for
        // any shard count, so no ambient clocks, entropy, or hash-order
        // iteration anywhere on the daemon surface (FLEET.md).
        CrateRules {
            rel_path: "crates/fleetd/src",
            rules: &[HASH_ITERATION, WALL_CLOCK, OS_ENTROPY],
        },
        // Input-facing modules: malformed traces/configs must surface as
        // Result errors, not panics.
        CrateRules {
            rel_path: "crates/simarch/src/trace.rs",
            rules: &[UNWRAP_IN_IO],
        },
        CrateRules {
            rel_path: "crates/simarch/src/config.rs",
            rules: &[UNWRAP_IN_IO],
        },
        // Fault-plan window validation: an invalid window is caller input
        // and must come back as a Result, not a panic mid-run (FAULTS.md).
        CrateRules {
            rel_path: "crates/simarch/src/faults.rs",
            rules: &[UNWRAP_IN_IO],
        },
        // The bench harness and its CSV/JSON writers: a panic here kills a
        // whole figure regeneration and leaves truncated artefacts.
        CrateRules {
            rel_path: "crates/bench/src/lib.rs",
            rules: &[UNWRAP_IN_IO],
        },
        CrateRules {
            rel_path: "crates/bench/src/scenario.rs",
            rules: &[UNWRAP_IN_IO],
        },
        CrateRules {
            rel_path: "crates/bench/src/bin/perfbench.rs",
            rules: &[UNWRAP_IN_IO],
        },
    ]
}

/// Crates whose PMU-event references are cross-checked against the registry.
pub const PMU_SCAN_ROOTS: &[&str] = &[
    "crates/core/src",
    "crates/bench/src",
    "crates/bench/benches",
    "crates/tiering/src",
];

/// Directory whose modules must register conservation-invariant hooks.
pub const INVARIANT_SCAN_ROOT: &str = "crates/simarch/src";

// ---------------------------------------------------------------------
// Source scanning plumbing
// ---------------------------------------------------------------------

/// Recursively collect `.rs` files under `root`, skipping directories whose
/// name is in `skip` at any depth.
fn rust_files_excluding(root: &Path, skip: &[&str]) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        if dir.is_file() {
            if dir.extension().is_some_and(|e| e == "rs") {
                out.push(dir);
            }
            continue;
        }
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| skip.iter().any(|s| n == *s)) {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Recursively collect `.rs` files under `root` (skipping `target/`).
fn rust_files(root: &Path) -> Vec<PathBuf> {
    rust_files_excluding(root, &["target"])
}

/// Every workspace source file subject to the whole-tree rules
/// (`hot-path-alloc`, `concurrency-hygiene`): all crates plus the
/// integration tests and examples, excluding vendored code and pflint
/// itself (whose needle tables and fixture trees would self-trip).
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = rust_files_excluding(&root.join("crates"), &["target", "vendor", "pflint"]);
    out.extend(rust_files(&root.join("tests")));
    out.extend(rust_files(&root.join("examples")));
    out.sort();
    out
}

// ---------------------------------------------------------------------
// Analysis 1: determinism lint
// ---------------------------------------------------------------------

/// (rule, needle, advice) — a finding fires when `needle` appears
/// (word-bounded) on a masked, non-test line and the rule is enabled for
/// the crate.
const DETERMINISM_PATTERNS: &[(&str, &str, &str)] = &[
    (
        rules::HASH_ITERATION,
        "HashMap",
        "hash iteration order is seed-dependent; use BTreeMap or sort before reporting",
    ),
    (
        rules::HASH_ITERATION,
        "HashSet",
        "hash iteration order is seed-dependent; use BTreeSet or sort before reporting",
    ),
    (
        rules::WALL_CLOCK,
        "Instant::now",
        "wall-clock reads make model output time-dependent",
    ),
    (
        rules::WALL_CLOCK,
        "SystemTime",
        "wall-clock reads make model output time-dependent",
    ),
    (
        rules::WALL_CLOCK,
        "std::time::Instant",
        "wall-clock in model code; gate or suppress",
    ),
    (
        rules::OS_ENTROPY,
        "thread_rng",
        "OS-seeded RNG; use a seeded StdRng instead",
    ),
    (
        rules::OS_ENTROPY,
        "from_entropy",
        "OS-seeded RNG; use seed_from_u64 instead",
    ),
    (
        rules::OS_ENTROPY,
        "OsRng",
        "OS entropy source in model code",
    ),
    (
        rules::UNWRAP_IN_IO,
        ".unwrap()",
        "input-facing module: propagate a Result instead",
    ),
    (
        rules::UNWRAP_IN_IO,
        ".expect(",
        "input-facing module: propagate a Result instead",
    ),
    (
        rules::UNWRAP_IN_IO,
        "panic!",
        "input-facing module: return an error instead of panicking",
    ),
];

/// Run the determinism lint over one workspace with the given per-crate
/// configuration. `root` is the workspace root.
pub fn run_determinism_with(root: &Path, config: &[CrateRules]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for target in config {
        let base = root.join(target.rel_path);
        for file in rust_files(&base) {
            let Ok(src) = SourceFile::load(&file) else {
                continue;
            };
            for (idx, line) in src.lines.iter().enumerate() {
                if src.is_test_line(idx) {
                    continue;
                }
                for &(rule, needle, advice) in DETERMINISM_PATTERNS {
                    if !target.rules.contains(&rule) || !contains_word(line, needle, false) {
                        continue;
                    }
                    if src.is_suppressed(idx, rule) {
                        continue;
                    }
                    findings.push(Finding {
                        rule,
                        file: file.clone(),
                        line: idx + 1,
                        message: format!("`{needle}`: {advice}"),
                    });
                }
            }
        }
    }
    findings
}

/// Determinism lint with the default workspace configuration.
pub fn run_determinism(root: &Path) -> Vec<Finding> {
    run_determinism_with(root, &determinism_config())
}

// ---------------------------------------------------------------------
// Analysis 2: PMU-counter consistency
// ---------------------------------------------------------------------

/// Ground truth: valid variant identifiers per typed event enum, recovered
/// from the live `pmu` crate (Debug names of `all()`), so the lint can
/// never drift from the registry.
fn enum_variants() -> Vec<(&'static str, BTreeSet<String>)> {
    use pmu::{ChaEvent, CoreEvent, CxlEvent, ImcEvent, M2pEvent};
    fn names<E: fmt::Debug>(all: Vec<E>) -> BTreeSet<String> {
        all.iter()
            .map(|e| {
                let dbg = format!("{e:?}");
                dbg.split(['(', ' ']).next().unwrap_or_default().to_string()
            })
            .collect()
    }
    vec![
        ("CoreEvent", names(CoreEvent::all())),
        ("ChaEvent", names(ChaEvent::all())),
        ("ImcEvent", names(ImcEvent::all())),
        ("M2pEvent", names(M2pEvent::all())),
        ("CxlEvent", names(CxlEvent::all())),
    ]
}

/// Extract `SomeEvent::Variant` references from a masked code line.
fn variant_refs(code: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for enum_name in ["CoreEvent", "ChaEvent", "ImcEvent", "M2pEvent", "CxlEvent"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(enum_name) {
            let at = from + pos;
            from = at + enum_name.len();
            // Must be a whole identifier followed by `::`.
            if at > 0 {
                let prev = code.as_bytes()[at - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            let rest = &code[from..];
            let Some(tail) = rest.strip_prefix("::") else {
                continue;
            };
            let variant: String = tail
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if variant.is_empty() || !variant.chars().next().unwrap().is_ascii_uppercase() {
                continue; // associated fns like `CoreEvent::all()` are fine
            }
            out.push((enum_name.to_string(), variant, at));
        }
    }
    out
}

/// Could this string literal plausibly be a perf-style counter name? Only
/// candidates whose prefix matches a known counter family are considered,
/// so app names like `"519.lbm_r"` never false-positive.
fn plausible_event_name(lit: &str) -> bool {
    !lit.is_empty()
        && lit
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
        && !pmu::registry::describe(lit).is_empty()
}

/// Cross-check every PMU-event reference in the configured crates against
/// the registry. Typed variants must exist in their enum (which pins the
/// bank); string names must resolve to a registry entry carrying a unit
/// and a description. String literals come from the lexer, so a counter
/// name mentioned in a comment is not a reference.
pub fn run_pmu_consistency(root: &Path) -> Vec<Finding> {
    let variants = enum_variants();
    let registry: BTreeSet<String> = pmu::registry::all_events()
        .into_iter()
        .map(|e| e.name)
        .collect();
    let mut findings = Vec::new();
    for rel in PMU_SCAN_ROOTS {
        for file in rust_files(&root.join(rel)) {
            let Ok(src) = SourceFile::load(&file) else {
                continue;
            };
            for (idx, line) in src.lines.iter().enumerate() {
                for (enum_name, variant, _) in variant_refs(line) {
                    let known = variants
                        .iter()
                        .find(|(n, _)| *n == enum_name)
                        .is_some_and(|(_, set)| set.contains(&variant));
                    if known || src.is_suppressed(idx, rules::PMU_VARIANT_UNKNOWN) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: rules::PMU_VARIANT_UNKNOWN,
                        file: file.clone(),
                        line: idx + 1,
                        message: format!(
                            "`{enum_name}::{variant}` is not a registered {enum_name} counter"
                        ),
                    });
                }
            }
            for (idx, lit) in src.string_literals() {
                if !plausible_event_name(lit)
                    || registry.contains(lit)
                    || src.is_suppressed(*idx, rules::PMU_EVENT_UNKNOWN)
                {
                    continue;
                }
                findings.push(Finding {
                    rule: rules::PMU_EVENT_UNKNOWN,
                    file: file.clone(),
                    line: idx + 1,
                    message: format!(
                        "\"{lit}\" looks like a counter name but is not in pmu::registry"
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 3: conservation-invariant hook verification
// ---------------------------------------------------------------------

/// Queue-bearing field types whose owners must register invariant hooks.
const QUEUE_TYPES: &[&str] = &["FifoServer", "Coverage", "BoundedWindow"];

/// Does this masked code line declare a struct field of a queue-bearing
/// type? Matches `name: FifoServer`, `name: Vec<Coverage>`, fully
/// qualified paths, etc. — any `: ... Type` with the type used in field
/// position.
fn declares_queue_field(code: &str) -> Option<&'static str> {
    let trimmed = code.trim_start();
    // Field declarations, not uses: `ident: ... QueueType ... ,` — require
    // a colon before the type name and exclude fn signatures/impl lines.
    if trimmed.starts_with("fn ")
        || trimmed.starts_with("pub fn ")
        || trimmed.starts_with("impl")
        || trimmed.starts_with("use ")
    {
        return None;
    }
    let colon = code.find(':')?;
    let after = &code[colon..];
    for ty in QUEUE_TYPES {
        if let Some(pos) = after.find(ty) {
            let bytes = after.as_bytes();
            let end = pos + ty.len();
            let left_ok =
                pos == 0 || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
            let right_ok =
                end >= after.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
            // `Coverage::new()` etc. is a use, not a declaration.
            let is_path_call = after[end..].starts_with("::");
            if left_ok && right_ok && !is_path_call {
                return Some(ty);
            }
        }
    }
    None
}

/// Verify that every module under [`INVARIANT_SCAN_ROOT`] that declares a
/// queue-bearing field also contains at least one `impl Invariants for`.
pub fn run_invariant_hooks(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in rust_files(&root.join(INVARIANT_SCAN_ROOT)) {
        let Ok(src) = SourceFile::load(&file) else {
            continue;
        };
        let mut first_decl: Option<(usize, &'static str)> = None;
        let mut has_hook = false;
        for (idx, line) in src.lines.iter().enumerate() {
            if src.is_test_line(idx) {
                continue;
            }
            if line.contains("impl Invariants for")
                || line.contains("impl crate::invariants::Invariants for")
            {
                has_hook = true;
            }
            if first_decl.is_none() {
                if let Some(ty) = declares_queue_field(line) {
                    if !src.is_suppressed(idx, rules::INVARIANT_HOOK_MISSING) {
                        first_decl = Some((idx + 1, ty));
                    }
                }
            }
        }
        if let Some((line, ty)) = first_decl {
            if !has_hook {
                findings.push(Finding {
                    rule: rules::INVARIANT_HOOK_MISSING,
                    file: file.clone(),
                    line,
                    message: format!(
                        "module declares a `{ty}` field but registers no `impl Invariants for` hook"
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 4: module counter registration
// ---------------------------------------------------------------------

/// Directory whose `SimModule` implementations are audited.
pub const MODULE_SCAN_ROOT: &str = "crates/simarch/src";

/// Verify that every `impl SimModule for` under [`MODULE_SCAN_ROOT`] routes
/// its counter list through `crate::module::registered`, which debug-asserts
/// each name against `pmu::registry`. A module returning a hand-written
/// slice would silently drift from the registry the moment a counter is
/// renamed; the `registered` choke point turns that into a test failure.
pub fn run_module_registration(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in rust_files(&root.join(MODULE_SCAN_ROOT)) {
        let Ok(src) = SourceFile::load(&file) else {
            continue;
        };
        let mut first_impl: Option<usize> = None;
        let mut has_registration = false;
        for (idx, line) in src.lines.iter().enumerate() {
            if src.is_test_line(idx) {
                continue;
            }
            if line.contains("registered(") {
                has_registration = true;
            }
            if first_impl.is_none()
                && (line.contains("impl SimModule for")
                    || line.contains("impl crate::module::SimModule for"))
                && !src.is_suppressed(idx, rules::MODULE_COUNTER_REGISTRATION)
            {
                first_impl = Some(idx + 1);
            }
        }
        if let Some(line) = first_impl {
            if !has_registration {
                findings.push(Finding {
                    rule: rules::MODULE_COUNTER_REGISTRATION,
                    file: file.clone(),
                    line,
                    message: "`impl SimModule` must route `counters()` through \
                              `crate::module::registered` so the names stay \
                              pinned to pmu::registry"
                        .to_string(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 5: observability choke point
// ---------------------------------------------------------------------

/// The one source directory allowed to read the wall clock.
pub const OBS_SCAN_ROOT: &str = "crates/obs/src";

/// The one file inside it allowed to name `Instant`.
pub const OBS_CLOCK_FILE: &str = "clock.rs";

/// Verify the wall-clock choke point: within `crates/obs/src`, the type
/// `Instant` (and `SystemTime`) may be named only in `clock.rs`, and that
/// file must contain exactly one `Instant::now` call site, carrying a
/// `pflint::allow(wall-clock)` marker. Combined with the determinism lint
/// over the model crates (which bans `Instant` outright), this pins every
/// clock read in the workspace to one audited line.
pub fn run_obs_choke_point(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut now_sites = 0usize;
    let base = root.join(OBS_SCAN_ROOT);
    if !base.is_dir() {
        // No obs crate in this tree (fixture workspaces): nothing to police.
        return findings;
    }
    for file in rust_files(&base) {
        let in_clock = file.file_name().is_some_and(|n| n == OBS_CLOCK_FILE);
        let Ok(src) = SourceFile::load(&file) else {
            continue;
        };
        for (idx, line) in src.lines.iter().enumerate() {
            if src.is_test_line(idx) {
                continue;
            }
            if !contains_word(line, "Instant", false) && !contains_word(line, "SystemTime", false) {
                continue;
            }
            if !in_clock {
                if src.is_suppressed(idx, rules::OBS_CHOKE_POINT) {
                    continue;
                }
                findings.push(Finding {
                    rule: rules::OBS_CHOKE_POINT,
                    file: file.clone(),
                    line: idx + 1,
                    message: format!(
                        "wall-clock type outside the `{OBS_CLOCK_FILE}` choke point; \
                         use obs::clock::now_ns instead"
                    ),
                });
                continue;
            }
            if contains_word(line, "Instant::now", false) {
                now_sites += 1;
                if !src.is_suppressed(idx, rules::WALL_CLOCK) {
                    findings.push(Finding {
                        rule: rules::OBS_CHOKE_POINT,
                        file: file.clone(),
                        line: idx + 1,
                        message: "the choke-point clock read must carry \
                                  `pflint::allow(wall-clock)`"
                            .to_string(),
                    });
                }
            }
        }
    }
    if now_sites != 1 {
        findings.push(Finding {
            rule: rules::OBS_CHOKE_POINT,
            file: root.join(OBS_SCAN_ROOT).join(OBS_CLOCK_FILE),
            line: 1,
            message: format!(
                "expected exactly one `Instant::now` call site in the choke point, found {now_sites}"
            ),
        });
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 6: fault-plan determinism
// ---------------------------------------------------------------------

/// Directories scanned for fault-plan construction sites. Vendored crates
/// and `pflint` itself (whose needle tables would self-trip) are excluded
/// by listing the roots explicitly.
pub const FAULT_PLAN_SCAN_ROOTS: &[&str] = &[
    "crates/simarch/src",
    "crates/core/src",
    "crates/bench/src",
    "crates/tiering/src",
    "tests",
];

/// A file is subject to the rule when its code mentions one of these.
const FAULT_PLAN_MARKERS: &[&str] = &["FaultPlan", "FaultWindow", "fault_plan"];

/// (needle, advice) — non-determinism sources forbidden wherever fault
/// plans are built or applied.
const FAULT_PLAN_NEEDLES: &[(&str, &str)] = &[
    (
        "thread_rng",
        "fault schedules must be a pure function of an explicit seed (FaultPlan::from_seed)",
    ),
    (
        "from_entropy",
        "fault schedules must be a pure function of an explicit seed (use seed_from_u64)",
    ),
    ("OsRng", "OS entropy has no place in a fault schedule"),
    (
        "rand::random",
        "implicitly OS-seeded; derive fault windows from an explicit seed",
    ),
    (
        "Instant::now",
        "fault windows are epoch-indexed; the wall clock must not shape them",
    ),
    (
        "SystemTime",
        "fault windows are epoch-indexed; the wall clock must not shape them",
    ),
];

/// Verify fault-plan determinism: every file under
/// [`FAULT_PLAN_SCAN_ROOTS`] whose code names a `FaultPlan`/`FaultWindow`
/// must be free of OS entropy and wall-clock reads. Unlike the general
/// determinism lint, test lines are **not** exempt — a fault schedule in a
/// test must replay bit-identically too, or the ground truth the anomaly
/// detector is validated against drifts run-to-run.
pub fn run_fault_plan_determinism(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rel in FAULT_PLAN_SCAN_ROOTS {
        for file in rust_files(&root.join(rel)) {
            let Ok(src) = SourceFile::load(&file) else {
                continue;
            };
            let subject = src.lines.iter().any(|l| {
                FAULT_PLAN_MARKERS
                    .iter()
                    .any(|m| contains_word(l, m, false))
            });
            if !subject {
                continue;
            }
            for (idx, line) in src.lines.iter().enumerate() {
                for &(needle, advice) in FAULT_PLAN_NEEDLES {
                    if !contains_word(line, needle, false) {
                        continue;
                    }
                    if src.is_suppressed(idx, rules::FAULT_PLAN_DETERMINISM) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: rules::FAULT_PLAN_DETERMINISM,
                        file: file.clone(),
                        line: idx + 1,
                        message: format!("`{needle}` in a fault-plan file: {advice}"),
                    });
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 7: hot-path allocations
// ---------------------------------------------------------------------

/// (needle, advice) — allocating calls forbidden inside a `// pflint::hot`
/// body. Each heap-allocates per call, which in the per-epoch tick/drain
/// grid means thousands of allocations per simulated second.
const HOT_PATH_NEEDLES: &[(&str, &str)] = &[
    (
        "format!",
        "string formatting allocates per call; resolve names/handles in the cold path",
    ),
    (
        ".to_string(",
        "allocates per call; intern or cache the string in the cold path",
    ),
    (
        "String::from(",
        "allocates per call; intern or cache the string in the cold path",
    ),
    (
        ".to_owned(",
        "allocates per call; borrow instead, or move the copy to the cold path",
    ),
    (
        "String::new(",
        "fresh String in a hot body; reuse a preallocated buffer",
    ),
    (
        "String::with_capacity(",
        "fresh String in a hot body; reuse a preallocated buffer",
    ),
    (
        ".to_vec(",
        "copies into a fresh Vec per call; borrow or reuse a buffer",
    ),
    (
        "vec![",
        "fresh Vec in a hot body; reuse a preallocated buffer",
    ),
    (
        "Vec::new(",
        "fresh Vec in a hot body; reuse a preallocated buffer",
    ),
    (
        "Vec::with_capacity(",
        "fresh Vec in a hot body; reuse a preallocated buffer",
    ),
    (
        "Box::new(",
        "heap allocation in a hot body; preallocate in the cold path",
    ),
    (
        ".collect(",
        "collecting allocates; iterate in place or fill a reused buffer",
    ),
];

/// Verify every `// pflint::hot`-annotated function body is free of
/// string/Vec-growth allocations. The annotation is a standalone line
/// comment directly above the function (doc comments and single-line
/// attributes may sit between). Dangling annotations — ones that do not
/// precede a function — are reported too, so a typo cannot silently
/// disable the check.
pub fn run_hot_path_alloc(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in workspace_files(root) {
        let Ok(src) = SourceFile::load(&file) else {
            continue;
        };
        for f in src.fns.iter().filter(|f| f.hot && f.body_start > 0) {
            for idx in (f.body_start - 1)..f.body_end.min(src.lines.len()) {
                let line = &src.lines[idx];
                for &(needle, advice) in HOT_PATH_NEEDLES {
                    if !contains_word(line, needle, false) {
                        continue;
                    }
                    if src.is_suppressed(idx, rules::HOT_PATH_ALLOC) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: rules::HOT_PATH_ALLOC,
                        file: file.clone(),
                        line: idx + 1,
                        message: format!(
                            "`{needle}` in the `// pflint::hot` body of `{}`: {advice}",
                            f.name
                        ),
                    });
                }
            }
        }
        for &line in &src.dangling_hot {
            if src.is_suppressed(line - 1, rules::HOT_PATH_ALLOC) {
                continue;
            }
            findings.push(Finding {
                rule: rules::HOT_PATH_ALLOC,
                file: file.clone(),
                line,
                message: "`// pflint::hot` does not precede a function; the annotation \
                          must sit directly above the fn it marks"
                    .to_string(),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 8: concurrency hygiene
// ---------------------------------------------------------------------

/// Path prefixes (relative to the workspace root) sanctioned to use
/// concurrency primitives: the scenario fan-out, the observability
/// internals, the counting-allocator test harness, and fleetd's shard
/// module — the one reviewed door behind which all of the collector
/// daemon's threads, channels and the scrape-snapshot mutex live
/// (FLEET.md).
pub const CONCURRENCY_ALLOWLIST: &[&str] = &[
    "crates/bench/src/scenario.rs",
    "crates/fleetd/src/shard.rs",
    "crates/obs/src",
    "crates/tsdb/tests/alloc_free.rs",
];

/// (needle, open_end, advice) — concurrency primitives confined to the
/// allowlist. `open_end` lets `Atomic` match `AtomicU64` etc.
const CONCURRENCY_NEEDLES: &[(&str, bool, &str)] = &[
    (
        "thread::spawn",
        false,
        "thread creation outside the sanctioned fan-out",
    ),
    (
        "thread::scope",
        false,
        "scoped threads outside the sanctioned fan-out",
    ),
    (
        ".spawn(",
        false,
        "thread creation outside the sanctioned fan-out",
    ),
    ("Mutex", true, "locking outside the sanctioned modules"),
    ("RwLock", true, "locking outside the sanctioned modules"),
    (
        "Condvar",
        true,
        "blocking sync outside the sanctioned modules",
    ),
    ("mpsc", true, "channels outside the sanctioned modules"),
    ("Atomic", true, "atomics outside the sanctioned modules"),
    (
        "unsafe",
        false,
        "unsafe code outside the sanctioned modules",
    ),
];

/// Confine threads, locks, atomics, channels, and `unsafe` to
/// [`CONCURRENCY_ALLOWLIST`]. Applies to test code too — shared state in a
/// test hides the same nondeterminism it hides in production. Grow
/// fleet-mode concurrency by extending the allowlist in one reviewed
/// place, not by scattering primitives.
pub fn run_concurrency_hygiene(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in workspace_files(root) {
        let rel = file.strip_prefix(root).unwrap_or(&file);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if CONCURRENCY_ALLOWLIST.iter().any(|p| rel_str.starts_with(p)) {
            continue;
        }
        let Ok(src) = SourceFile::load(&file) else {
            continue;
        };
        for (idx, line) in src.lines.iter().enumerate() {
            for &(needle, open_end, advice) in CONCURRENCY_NEEDLES {
                if !contains_word(line, needle, open_end) {
                    continue;
                }
                if src.is_suppressed(idx, rules::CONCURRENCY_HYGIENE) {
                    continue;
                }
                findings.push(Finding {
                    rule: rules::CONCURRENCY_HYGIENE,
                    file: file.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{needle}`: {advice} (see CONCURRENCY_ALLOWLIST in STATIC_ANALYSIS.md)"
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 9: panic freedom
// ---------------------------------------------------------------------

/// Service-facing roots that must stay panic-free: the observability
/// layer and the fleetd daemon surface (ROADMAP item 2) — both stay
/// resident in long-running collector processes, where a panic path is an
/// outage, not a stack trace.
pub const PANIC_FREEDOM_ROOTS: &[&str] = &["crates/fleetd/src", "crates/obs/src"];

/// (needle, advice) — explicit panic paths. `debug_assert!` is fine (it
/// compiles out of release daemons); word boundaries keep it unmatched.
const PANIC_FREEDOM_NEEDLES: &[(&str, &str)] = &[
    (
        ".unwrap()",
        "daemon-path code must not panic; match or propagate the error",
    ),
    (
        ".expect(",
        "daemon-path code must not panic; match or propagate the error",
    ),
    ("panic!", "daemon-path code must not panic; return an error"),
    (
        "unreachable!",
        "daemon-path code must not panic; return an error",
    ),
    ("todo!", "unfinished daemon-path code must not ship"),
    (
        "unimplemented!",
        "unfinished daemon-path code must not ship",
    ),
    (
        "assert!",
        "release-path assert panics; use debug_assert! or return an error",
    ),
    (
        "assert_eq!",
        "release-path assert panics; use debug_assert_eq! or return an error",
    ),
    (
        "assert_ne!",
        "release-path assert panics; use debug_assert_ne! or return an error",
    ),
];

/// Verify the service-facing roots contain no panic paths on non-test
/// lines: no `unwrap`/`expect`, no panic-family macros, no `expr[...]`
/// indexing (use `.get()`), and no `/`/`%` by a non-literal divisor.
pub fn run_panic_freedom(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rel in PANIC_FREEDOM_ROOTS {
        for file in rust_files(&root.join(rel)) {
            let Ok(src) = SourceFile::load(&file) else {
                continue;
            };
            for (idx, line) in src.lines.iter().enumerate() {
                if src.is_test_line(idx) {
                    continue;
                }
                for &(needle, advice) in PANIC_FREEDOM_NEEDLES {
                    if !contains_word(line, needle, false) {
                        continue;
                    }
                    if src.is_suppressed(idx, rules::PANIC_FREEDOM) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: rules::PANIC_FREEDOM,
                        file: file.clone(),
                        line: idx + 1,
                        message: format!("`{needle}`: {advice}"),
                    });
                }
            }
            for &idx in src.index_lines() {
                if src.is_test_line(idx) || src.is_suppressed(idx, rules::PANIC_FREEDOM) {
                    continue;
                }
                findings.push(Finding {
                    rule: rules::PANIC_FREEDOM,
                    file: file.clone(),
                    line: idx + 1,
                    message: "indexing can panic out-of-range in a daemon path; use .get()"
                        .to_string(),
                });
            }
            for &idx in src.div_lines() {
                if src.is_test_line(idx) || src.is_suppressed(idx, rules::PANIC_FREEDOM) {
                    continue;
                }
                findings.push(Finding {
                    rule: rules::PANIC_FREEDOM,
                    file: file.clone(),
                    line: idx + 1,
                    message: "division/modulo by a non-literal divisor can panic on zero; \
                              guard it or use checked_div"
                        .to_string(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Entry point, filtering, JSON, and baseline
// ---------------------------------------------------------------------

/// Run all analyses with the default configuration.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = run_determinism(root);
    findings.extend(run_pmu_consistency(root));
    findings.extend(run_invariant_hooks(root));
    findings.extend(run_module_registration(root));
    findings.extend(run_obs_choke_point(root));
    findings.extend(run_fault_plan_determinism(root));
    findings.extend(run_hot_path_alloc(root));
    findings.extend(run_concurrency_hygiene(root));
    findings.extend(run_panic_freedom(root));
    sort_findings(root, &mut findings);
    findings
}

/// Run all analyses, keeping only findings whose rule is in `only` (an
/// empty filter keeps everything).
pub fn run_filtered(root: &Path, only: &[String]) -> Vec<Finding> {
    let mut findings = run(root);
    if !only.is_empty() {
        findings.retain(|f| only.iter().any(|r| r == f.rule));
    }
    findings
}

/// Canonical order: by root-relative path, then line, rule, message.
pub fn sort_findings(root: &Path, findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (rel_str(root, &a.file), a.line, a.rule, &a.message).cmp(&(
            rel_str(root, &b.file),
            b.line,
            b.rule,
            &b.message,
        ))
    });
}

/// Root-relative, forward-slash path for stable machine-readable output.
pub fn rel_str(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Render findings as the documented `pflint-findings-v1` JSON schema:
/// one finding object per line, sorted canonically, so the committed
/// baseline diffs cleanly under `git diff`.
pub fn render_json(root: &Path, findings: &[Finding]) -> String {
    let mut sorted = findings.to_vec();
    sort_findings(root, &mut sorted);
    let mut out = String::from("{\n  \"pflint\": \"v1\",\n  \"findings\": [\n");
    for (i, f) in sorted.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            obs::json::escape(f.rule),
            obs::json::escape(&rel_str(root, &f.file)),
            f.line,
            obs::json::escape(&f.message),
            if i + 1 < sorted.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// A finding's identity for baseline matching: `(rule, file, message)` —
/// deliberately excluding the line number, so unrelated edits that shift
/// a suppressed legacy finding up or down do not churn the baseline.
pub type BaselineKey = (String, String, String);

/// Parse a `--write-baseline` artefact back into its match keys.
pub fn parse_baseline(text: &str) -> Result<BTreeSet<BaselineKey>, String> {
    let v = obs::json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
    if v.get("pflint").and_then(|x| x.as_str()) != Some("v1") {
        return Err("baseline missing `\"pflint\": \"v1\"` marker".to_string());
    }
    let arr = v
        .get("findings")
        .and_then(|x| x.as_arr())
        .ok_or_else(|| "baseline missing `findings` array".to_string())?;
    let mut keys = BTreeSet::new();
    for item in arr {
        let (Some(rule), Some(file), Some(message)) = (
            item.get("rule").and_then(|x| x.as_str()),
            item.get("file").and_then(|x| x.as_str()),
            item.get("message").and_then(|x| x.as_str()),
        ) else {
            return Err("baseline finding missing rule/file/message".to_string());
        };
        keys.insert((rule.to_string(), file.to_string(), message.to_string()));
    }
    Ok(keys)
}

/// Findings not covered by the baseline — the CI gate fails on these.
pub fn new_vs_baseline(
    root: &Path,
    findings: &[Finding],
    baseline: &BTreeSet<BaselineKey>,
) -> Vec<Finding> {
    findings
        .iter()
        .filter(|f| {
            !baseline.contains(&(
                f.rule.to_string(),
                rel_str(root, &f.file),
                f.message.clone(),
            ))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_refs_parses_qualified_paths() {
        let refs = variant_refs("bank.inc(ImcEvent::RpqInserts); x(pmu::CoreEvent::InstRetired)");
        assert!(refs
            .iter()
            .any(|(e, v, _)| e == "ImcEvent" && v == "RpqInserts"));
        assert!(refs
            .iter()
            .any(|(e, v, _)| e == "CoreEvent" && v == "InstRetired"));
    }

    #[test]
    fn variant_refs_skips_associated_fns() {
        assert!(variant_refs("for e in CoreEvent::all() {}").is_empty());
    }

    #[test]
    fn event_literals_require_known_family() {
        assert!(plausible_event_name("unc_m_rpq_inserts"));
        assert!(!plausible_event_name("519.lbm_r"));
        assert!(!plausible_event_name("hello world"));
    }

    #[test]
    fn queue_field_declarations_detected() {
        assert_eq!(
            declares_queue_field("    server: FifoServer,"),
            Some("FifoServer")
        );
        assert_eq!(
            declares_queue_field("    tor_ne: Vec<Coverage>,"),
            Some("Coverage")
        );
        assert_eq!(
            declares_queue_field("    pub sb: BoundedWindow,"),
            Some("BoundedWindow")
        );
        assert_eq!(
            declares_queue_field("        port: FifoServer::new(),"),
            None
        );
        assert_eq!(
            declares_queue_field("use crate::queues::{Coverage, FifoServer};"),
            None
        );
        assert_eq!(
            declares_queue_field("fn serve(&mut self) -> Coverage {"),
            None
        );
    }

    /// Build a throwaway workspace with the given files (paths relative to
    /// the workspace root).
    fn fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
        let root = std::env::temp_dir().join(format!("pflint-fixture-{name}"));
        let _ = std::fs::remove_dir_all(&root);
        for (rel, text) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, text).unwrap();
        }
        root
    }

    fn obs_fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
        let prefixed: Vec<(String, &str)> = files
            .iter()
            .map(|(f, t)| (format!("crates/obs/src/{f}"), *t))
            .collect();
        let borrowed: Vec<(&str, &str)> = prefixed.iter().map(|(f, t)| (f.as_str(), *t)).collect();
        fixture(name, &borrowed)
    }

    #[test]
    fn choke_point_accepts_the_sanctioned_shape() {
        let root = obs_fixture(
            "ok",
            &[(
                "clock.rs",
                "use std::time::Instant; // pflint::allow(wall-clock)\n\
                 pub fn now() -> u64 { Instant::now().elapsed().as_nanos() as u64 } // pflint::allow(wall-clock)\n",
            )],
        );
        assert!(run_obs_choke_point(&root).is_empty());
    }

    #[test]
    fn choke_point_rejects_instant_outside_clock_rs() {
        let root = obs_fixture(
            "stray",
            &[
                (
                    "clock.rs",
                    "pub fn now() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 } // pflint::allow(wall-clock)\n",
                ),
                ("span.rs", "fn ts() { let _ = std::time::Instant::now(); }\n"),
            ],
        );
        let findings = run_obs_choke_point(&root);
        assert!(findings
            .iter()
            .any(|f| f.rule == rules::OBS_CHOKE_POINT && f.file.ends_with("span.rs")));
    }

    #[test]
    fn choke_point_requires_exactly_one_clock_read() {
        let root = obs_fixture(
            "dup",
            &[(
                "clock.rs",
                "fn a() { let _ = Instant::now(); } // pflint::allow(wall-clock)\n\
                 fn b() { let _ = Instant::now(); } // pflint::allow(wall-clock)\n",
            )],
        );
        let findings = run_obs_choke_point(&root);
        assert!(
            findings.iter().any(|f| f.message.contains("found 2")),
            "{findings:?}"
        );

        let none = obs_fixture("none", &[("clock.rs", "pub fn now() -> u64 { 0 }\n")]);
        let findings = run_obs_choke_point(&none);
        assert!(findings.iter().any(|f| f.message.contains("found 0")));
    }

    #[test]
    fn choke_point_requires_the_allow_marker() {
        let root = obs_fixture(
            "unmarked",
            &[(
                "clock.rs",
                "pub fn now() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            )],
        );
        let findings = run_obs_choke_point(&root);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("pflint::allow(wall-clock)")));
    }

    #[test]
    fn choke_point_ignores_instant_in_comments_and_strings() {
        let root = obs_fixture(
            "masked",
            &[
                (
                    "clock.rs",
                    "pub fn now() -> u64 { Instant::now().elapsed().as_nanos() as u64 } // pflint::allow(wall-clock)\n",
                ),
                (
                    "span.rs",
                    "// Instant::now would be wrong here.\n\
                     /* SystemTime too */\n\
                     fn label() -> &'static str { \"Instant::now\" }\n",
                ),
            ],
        );
        assert!(run_obs_choke_point(&root).is_empty());
    }

    #[test]
    fn fault_plan_entropy_is_flagged() {
        let root = fixture(
            "fault-entropy",
            &[(
                "crates/simarch/src/faults.rs",
                "fn plan() { let p = FaultPlan::new(); let r = rand::thread_rng(); }\n",
            )],
        );
        let findings = run_fault_plan_determinism(&root);
        assert!(
            findings.iter().any(
                |f| f.rule == rules::FAULT_PLAN_DETERMINISM && f.message.contains("thread_rng")
            ),
            "{findings:?}"
        );
    }

    #[test]
    fn fault_plan_rule_covers_test_lines() {
        let root = fixture(
            "fault-testmod",
            &[(
                "tests/fault_prop.rs",
                "#[cfg(test)]\nmod t { fn f() { let _ = FaultPlan::new(); let _ = rand::random::<u64>(); } }\n",
            )],
        );
        assert!(
            !run_fault_plan_determinism(&root).is_empty(),
            "test code gets no exemption from fault-plan determinism"
        );
    }

    #[test]
    fn seeded_fault_plans_are_clean() {
        let root = fixture(
            "fault-seeded",
            &[(
                "crates/simarch/src/faults.rs",
                "fn plan(seed: u64) { let p = FaultPlan::from_seed(seed, 4, &cfg, 100); }\n",
            )],
        );
        assert!(run_fault_plan_determinism(&root).is_empty());
    }

    #[test]
    fn files_without_fault_plans_are_out_of_scope() {
        let root = fixture(
            "fault-unrelated",
            &[(
                "crates/simarch/src/other.rs",
                "fn f() { let r = rand::thread_rng(); } // a different lint's problem\n",
            )],
        );
        assert!(run_fault_plan_determinism(&root).is_empty());
    }

    #[test]
    fn fault_plan_marker_in_comment_is_not_a_subject() {
        // The old engine stripped only `//` comments; a marker in a block
        // comment or string made the file subject to the rule.
        let root = fixture(
            "fault-masked",
            &[(
                "crates/simarch/src/other.rs",
                "/* FaultPlan is documented here */\n\
                 fn f() -> &'static str { let _ = rand::thread_rng(); \"FaultWindow\" }\n",
            )],
        );
        assert!(run_fault_plan_determinism(&root).is_empty());
    }

    #[test]
    fn fault_plan_suppression_marker_works() {
        let root = fixture(
            "fault-allow",
            &[(
                "crates/bench/src/lib.rs",
                "fn f() { let p = FaultPlan::new(); \
                 let t = SystemTime::now(); // pflint::allow(fault-plan-determinism)\n}\n",
            )],
        );
        assert!(run_fault_plan_determinism(&root).is_empty());
    }

    #[test]
    fn hot_path_alloc_flags_annotated_bodies_only() {
        let root = fixture(
            "hot-basic",
            &[(
                "crates/x/src/lib.rs",
                "// pflint::hot\n\
                 fn tick() {\n\
                     let s = format!(\"{}\", 1);\n\
                 }\n\
                 fn cold() {\n\
                     let s = format!(\"{}\", 1);\n\
                 }\n",
            )],
        );
        let findings = run_hot_path_alloc(&root);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("tick"));
    }

    #[test]
    fn hot_path_alloc_survives_braces_in_strings() {
        // The old brace counter would have ended the body at the `}` inside
        // the string and missed the allocation below it.
        let root = fixture(
            "hot-brace",
            &[(
                "crates/x/src/lib.rs",
                "// pflint::hot\n\
                 fn tick() {\n\
                     let close = \"}\";\n\
                     let s = String::from(\"x\");\n\
                 }\n",
            )],
        );
        let findings = run_hot_path_alloc(&root);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn dangling_hot_annotation_is_a_finding() {
        let root = fixture(
            "hot-dangling",
            &[("crates/x/src/lib.rs", "// pflint::hot\nstruct NotAFn;\n")],
        );
        let findings = run_hot_path_alloc(&root);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("does not precede a function"));
    }

    #[test]
    fn concurrency_confined_to_allowlist() {
        let root = fixture(
            "conc",
            &[
                (
                    "crates/x/src/lib.rs",
                    "use std::sync::Mutex;\nfn f() { let _ = std::thread::spawn(|| {}); }\n",
                ),
                (
                    "crates/obs/src/span.rs",
                    "use std::sync::atomic::AtomicU64;\n",
                ),
                (
                    "crates/bench/src/scenario.rs",
                    "fn f() { std::thread::scope(|_| {}); }\n",
                ),
            ],
        );
        let findings = run_concurrency_hygiene(&root);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.file.ends_with("lib.rs")));
    }

    #[test]
    fn panic_freedom_flags_all_panic_surfaces() {
        let root = obs_fixture(
            "panic",
            &[
                (
                    "clock.rs",
                    "pub fn now() -> u64 { Instant::now().elapsed().as_nanos() as u64 } // pflint::allow(wall-clock)\n",
                ),
                (
                    "daemon.rs",
                    "fn f(xs: &[u64], n: u64) -> u64 {\n\
                     let a = xs.first().unwrap();\n\
                     let b = xs[0];\n\
                     let c = a / n;\n\
                     debug_assert!(n > 0);\n\
                     *a + b + c\n\
                     }\n",
                ),
            ],
        );
        let findings = run_panic_freedom(&root);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert!(lines.contains(&2), "unwrap: {findings:?}");
        assert!(lines.contains(&3), "indexing: {findings:?}");
        assert!(lines.contains(&4), "division: {findings:?}");
        assert_eq!(
            findings.len(),
            3,
            "debug_assert must not fire: {findings:?}"
        );
    }

    #[test]
    fn json_round_trips_through_baseline() {
        let root = PathBuf::from("/ws");
        let findings = vec![
            Finding {
                rule: rules::WALL_CLOCK,
                file: root.join("crates/x/src/lib.rs"),
                line: 3,
                message: "`Instant::now`: say \"no\"".to_string(),
            },
            Finding {
                rule: rules::PANIC_FREEDOM,
                file: root.join("crates/obs/src/span.rs"),
                line: 9,
                message: "indexing".to_string(),
            },
        ];
        let json = render_json(&root, &findings);
        let keys = parse_baseline(&json).unwrap();
        assert_eq!(keys.len(), 2);
        assert!(new_vs_baseline(&root, &findings, &keys).is_empty());

        let extra = Finding {
            rule: rules::OS_ENTROPY,
            file: root.join("crates/x/src/lib.rs"),
            line: 1,
            message: "`OsRng`: nope".to_string(),
        };
        let mut more = findings.clone();
        more.push(extra.clone());
        let fresh = new_vs_baseline(&root, &more, &keys);
        assert_eq!(fresh, vec![extra]);
    }

    #[test]
    fn empty_baseline_parses() {
        let keys = parse_baseline("{\n  \"pflint\": \"v1\",\n  \"findings\": [\n  ]\n}\n").unwrap();
        assert!(keys.is_empty());
    }
}
