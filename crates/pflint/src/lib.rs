//! pflint — the PathFinder workspace static-analysis pass.
//!
//! Seven analyses keep the simulator honest:
//!
//! 1. **Determinism lint** ([`run_determinism`]): model code (`simarch`,
//!    `core`, `tsdb`) must be bit-reproducible run-to-run, so hash-ordered
//!    containers, wall-clock reads, and OS entropy are findings unless
//!    explicitly suppressed.
//! 2. **PMU-counter consistency** ([`run_pmu_consistency`]): every counter
//!    referenced in `core`, `bench` and `tiering` — as a typed enum variant
//!    or as a perf-style name string — must resolve against the `pmu`
//!    registry (existence, bank, unit, description).
//! 3. **Invariant-hook verification** ([`run_invariant_hooks`]): every
//!    `simarch` module declaring a queue-bearing field (`FifoServer`,
//!    `Coverage`, `BoundedWindow`) must register an `impl Invariants for`
//!    hook, so the epoch-boundary conservation audit covers all flows.
//! 4. **Module counter registration** ([`run_module_registration`]): every
//!    `impl SimModule for` in `simarch` must route its `counters()` list
//!    through `crate::module::registered`, which pins each advertised name
//!    to the `pmu` registry.
//! 5. **Observability choke point** ([`run_obs_choke_point`]): the `obs`
//!    crate is the only sanctioned home for wall-clock reads, and inside it
//!    `Instant` may appear only in `clock.rs`, with exactly one
//!    `Instant::now` call site carrying a `pflint::allow(wall-clock)`
//!    marker. Everything else must go through `obs::clock::now_ns`.
//! 6. **Fault-plan determinism** ([`run_fault_plan_determinism`]): any file
//!    that builds or applies a `FaultPlan` must derive its schedule from an
//!    explicit seed — OS entropy and wall-clock reads are findings even in
//!    test code, so injected anomalies replay bit-identically (FAULTS.md).
//! 7. **Ingest hot path** ([`run_ingest_hot_path`]): the steady-state
//!    epoch-ingest bodies (`tsdb::Db::ingest` and the materializer's
//!    `ingest_*` loops) must stay allocation-free (PERFORMANCE.md), so
//!    string-allocating calls (`format!`, `.to_string`, `String::from`,
//!    `.to_owned`) inside an `fn ingest*` body are findings. String work
//!    belongs in the cold handle-resolution path (`series_handle`).
//!
//! Suppression: append `// pflint::allow(<rule>)` to the offending line, or
//! place it alone on the line above. Each suppression silences exactly one
//! rule on exactly one line.
//!
//! The lint is textual by design — it runs in milliseconds with no
//! dependencies beyond `pmu` (the registry ground truth) and needs no
//! nightly compiler hooks. Test modules (`#[cfg(test)]` to end of file, the
//! workspace convention) are exempt from the determinism and unwrap rules.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod rules {
    //! Stable rule identifiers, usable in `pflint::allow(...)` comments.
    pub const HASH_ITERATION: &str = "hashmap-iteration";
    pub const WALL_CLOCK: &str = "wall-clock";
    pub const OS_ENTROPY: &str = "os-entropy";
    pub const UNWRAP_IN_IO: &str = "unwrap-in-io-paths";
    pub const PMU_EVENT_UNKNOWN: &str = "pmu-event-unknown";
    pub const PMU_VARIANT_UNKNOWN: &str = "pmu-variant-unknown";
    pub const INVARIANT_HOOK_MISSING: &str = "invariant-hook-missing";
    pub const OBS_CHOKE_POINT: &str = "obs-choke-point";
    pub const MODULE_COUNTER_REGISTRATION: &str = "module-counter-registration";
    pub const FAULT_PLAN_DETERMINISM: &str = "fault-plan-determinism";
    pub const INGEST_HOT_PATH: &str = "ingest-hot-path";

    pub const ALL: &[&str] = &[
        HASH_ITERATION,
        WALL_CLOCK,
        OS_ENTROPY,
        UNWRAP_IN_IO,
        PMU_EVENT_UNKNOWN,
        PMU_VARIANT_UNKNOWN,
        INVARIANT_HOOK_MISSING,
        OBS_CHOKE_POINT,
        MODULE_COUNTER_REGISTRATION,
        FAULT_PLAN_DETERMINISM,
        INGEST_HOT_PATH,
    ];
}

/// One reported problem, anchored to `file:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which determinism rules apply to one crate (per-crate configuration).
#[derive(Clone, Debug)]
pub struct CrateRules {
    /// Path relative to the workspace root, e.g. `"crates/simarch/src"`.
    pub rel_path: &'static str,
    /// Determinism rules enforced under that path.
    pub rules: &'static [&'static str],
}

/// The default per-crate determinism configuration. Model code gets the
/// full set; `core` additionally bans unwraps on its report-building I/O
/// boundary; the trace/config/tsdb input paths ban fresh unwraps outright.
pub fn determinism_config() -> Vec<CrateRules> {
    use rules::*;
    vec![
        CrateRules {
            rel_path: "crates/simarch/src",
            rules: &[HASH_ITERATION, WALL_CLOCK, OS_ENTROPY],
        },
        CrateRules {
            rel_path: "crates/core/src",
            rules: &[HASH_ITERATION, WALL_CLOCK, OS_ENTROPY],
        },
        CrateRules {
            rel_path: "crates/tsdb/src",
            rules: &[HASH_ITERATION, WALL_CLOCK, OS_ENTROPY, UNWRAP_IN_IO],
        },
        // The figure binaries share artefacts with the model runs; a clock
        // or entropy read there would silently vary regenerated CSVs.
        CrateRules {
            rel_path: "crates/bench/src",
            rules: &[WALL_CLOCK, OS_ENTROPY],
        },
        // The observability layer itself: every clock read must route
        // through the clock.rs choke point (see `run_obs_choke_point`).
        CrateRules {
            rel_path: "crates/obs/src",
            rules: &[HASH_ITERATION, WALL_CLOCK, OS_ENTROPY],
        },
        // Input-facing modules: malformed traces/configs must surface as
        // Result errors, not panics.
        CrateRules {
            rel_path: "crates/simarch/src/trace.rs",
            rules: &[UNWRAP_IN_IO],
        },
        CrateRules {
            rel_path: "crates/simarch/src/config.rs",
            rules: &[UNWRAP_IN_IO],
        },
    ]
}

/// Crates whose PMU-event references are cross-checked against the registry.
pub const PMU_SCAN_ROOTS: &[&str] = &[
    "crates/core/src",
    "crates/bench/src",
    "crates/bench/benches",
    "crates/tiering/src",
];

/// Directory whose modules must register conservation-invariant hooks.
pub const INVARIANT_SCAN_ROOT: &str = "crates/simarch/src";

// ---------------------------------------------------------------------
// Source scanning plumbing
// ---------------------------------------------------------------------

/// A loaded source file, split into lines once.
struct SourceFile {
    lines: Vec<String>,
    /// Index of the first `#[cfg(test)]` line, if any. By workspace
    /// convention test modules sit at the end of the file, so everything
    /// from here on is test code.
    test_start: Option<usize>,
}

impl SourceFile {
    fn load(path: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let test_start = lines.iter().position(|l| l.trim() == "#[cfg(test)]");
        Ok(SourceFile { lines, test_start })
    }

    fn is_test_line(&self, idx: usize) -> bool {
        self.test_start.is_some_and(|t| idx >= t)
    }

    /// Is `rule` suppressed on line `idx` (0-based)? Checks the line itself
    /// and a standalone comment on the line above.
    fn is_suppressed(&self, idx: usize, rule: &str) -> bool {
        let marker = format!("pflint::allow({rule})");
        if self.lines[idx].contains(&marker) {
            return true;
        }
        idx > 0 && {
            let above = self.lines[idx - 1].trim();
            above.starts_with("//") && above.contains(&marker)
        }
    }
}

/// Recursively collect `.rs` files under `root` (skipping `target/`).
fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        if dir.is_file() {
            if dir.extension().is_some_and(|e| e == "rs") {
                out.push(dir);
            }
            continue;
        }
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Strip `//` line comments so commented-out code is not linted. Naive
/// about `//` inside string literals, which model code does not contain.
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

// ---------------------------------------------------------------------
// Analysis 1: determinism lint
// ---------------------------------------------------------------------

/// (rule, needle, advice) — a finding fires when `needle` appears in the
/// code part of a non-test line and the rule is enabled for the crate.
const DETERMINISM_PATTERNS: &[(&str, &str, &str)] = &[
    (
        rules::HASH_ITERATION,
        "HashMap",
        "hash iteration order is seed-dependent; use BTreeMap or sort before reporting",
    ),
    (
        rules::HASH_ITERATION,
        "HashSet",
        "hash iteration order is seed-dependent; use BTreeSet or sort before reporting",
    ),
    (
        rules::WALL_CLOCK,
        "Instant::now",
        "wall-clock reads make model output time-dependent",
    ),
    (
        rules::WALL_CLOCK,
        "SystemTime",
        "wall-clock reads make model output time-dependent",
    ),
    (
        rules::WALL_CLOCK,
        "std::time::Instant",
        "wall-clock in model code; gate or suppress",
    ),
    (
        rules::OS_ENTROPY,
        "thread_rng",
        "OS-seeded RNG; use a seeded StdRng instead",
    ),
    (
        rules::OS_ENTROPY,
        "from_entropy",
        "OS-seeded RNG; use seed_from_u64 instead",
    ),
    (
        rules::OS_ENTROPY,
        "OsRng",
        "OS entropy source in model code",
    ),
    (
        rules::UNWRAP_IN_IO,
        ".unwrap()",
        "input-facing module: propagate a Result instead",
    ),
    (
        rules::UNWRAP_IN_IO,
        ".expect(",
        "input-facing module: propagate a Result instead",
    ),
];

/// Run the determinism lint over one workspace with the given per-crate
/// configuration. `root` is the workspace root.
pub fn run_determinism_with(root: &Path, config: &[CrateRules]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for target in config {
        let base = root.join(target.rel_path);
        for file in rust_files(&base) {
            let Ok(src) = SourceFile::load(&file) else {
                continue;
            };
            for (idx, line) in src.lines.iter().enumerate() {
                if src.is_test_line(idx) {
                    break;
                }
                let code = code_part(line);
                for &(rule, needle, advice) in DETERMINISM_PATTERNS {
                    if !target.rules.contains(&rule) || !code.contains(needle) {
                        continue;
                    }
                    if src.is_suppressed(idx, rule) {
                        continue;
                    }
                    findings.push(Finding {
                        rule,
                        file: file.clone(),
                        line: idx + 1,
                        message: format!("`{needle}`: {advice}"),
                    });
                }
            }
        }
    }
    findings
}

/// Determinism lint with the default workspace configuration.
pub fn run_determinism(root: &Path) -> Vec<Finding> {
    run_determinism_with(root, &determinism_config())
}

// ---------------------------------------------------------------------
// Analysis 2: PMU-counter consistency
// ---------------------------------------------------------------------

/// Ground truth: valid variant identifiers per typed event enum, recovered
/// from the live `pmu` crate (Debug names of `all()`), so the lint can
/// never drift from the registry.
fn enum_variants() -> Vec<(&'static str, BTreeSet<String>)> {
    use pmu::{ChaEvent, CoreEvent, CxlEvent, ImcEvent, M2pEvent};
    fn names<E: fmt::Debug>(all: Vec<E>) -> BTreeSet<String> {
        all.iter()
            .map(|e| {
                let dbg = format!("{e:?}");
                dbg.split(['(', ' ']).next().unwrap_or_default().to_string()
            })
            .collect()
    }
    vec![
        ("CoreEvent", names(CoreEvent::all())),
        ("ChaEvent", names(ChaEvent::all())),
        ("ImcEvent", names(ImcEvent::all())),
        ("M2pEvent", names(M2pEvent::all())),
        ("CxlEvent", names(CxlEvent::all())),
    ]
}

/// Extract `SomeEvent::Variant` references from a code line.
fn variant_refs(code: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for enum_name in ["CoreEvent", "ChaEvent", "ImcEvent", "M2pEvent", "CxlEvent"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(enum_name) {
            let at = from + pos;
            from = at + enum_name.len();
            // Must be a whole identifier followed by `::`.
            if at > 0 {
                let prev = code.as_bytes()[at - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            let rest = &code[from..];
            let Some(tail) = rest.strip_prefix("::") else {
                continue;
            };
            let variant: String = tail
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if variant.is_empty() || !variant.chars().next().unwrap().is_ascii_uppercase() {
                continue; // associated fns like `CoreEvent::all()` are fine
            }
            out.push((enum_name.to_string(), variant, at));
        }
    }
    out
}

/// Extract perf-style event-name string literals from a code line. Only
/// candidates that start with a known counter-family prefix are returned,
/// so app names like `"519.lbm_r"` never false-positive.
fn event_name_literals(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('"') else { break };
        let lit = &tail[..end];
        rest = &tail[end + 1..];
        let plausible = !lit.is_empty()
            && lit
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
            && !pmu::registry::describe(lit).is_empty();
        if plausible {
            out.push(lit.to_string());
        }
    }
    out
}

/// Cross-check every PMU-event reference in the configured crates against
/// the registry. Typed variants must exist in their enum (which pins the
/// bank); string names must resolve to a registry entry carrying a unit
/// and a description.
pub fn run_pmu_consistency(root: &Path) -> Vec<Finding> {
    let variants = enum_variants();
    let registry: BTreeSet<String> = pmu::registry::all_events()
        .into_iter()
        .map(|e| e.name)
        .collect();
    let mut findings = Vec::new();
    for rel in PMU_SCAN_ROOTS {
        for file in rust_files(&root.join(rel)) {
            let Ok(src) = SourceFile::load(&file) else {
                continue;
            };
            for (idx, line) in src.lines.iter().enumerate() {
                let code = code_part(line);
                for (enum_name, variant, _) in variant_refs(code) {
                    let known = variants
                        .iter()
                        .find(|(n, _)| *n == enum_name)
                        .is_some_and(|(_, set)| set.contains(&variant));
                    if known || src.is_suppressed(idx, rules::PMU_VARIANT_UNKNOWN) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: rules::PMU_VARIANT_UNKNOWN,
                        file: file.clone(),
                        line: idx + 1,
                        message: format!(
                            "`{enum_name}::{variant}` is not a registered {enum_name} counter"
                        ),
                    });
                }
                for name in event_name_literals(code) {
                    if registry.contains(&name) || src.is_suppressed(idx, rules::PMU_EVENT_UNKNOWN)
                    {
                        continue;
                    }
                    findings.push(Finding {
                        rule: rules::PMU_EVENT_UNKNOWN,
                        file: file.clone(),
                        line: idx + 1,
                        message: format!(
                            "\"{name}\" looks like a counter name but is not in pmu::registry"
                        ),
                    });
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 3: conservation-invariant hook verification
// ---------------------------------------------------------------------

/// Queue-bearing field types whose owners must register invariant hooks.
const QUEUE_TYPES: &[&str] = &["FifoServer", "Coverage", "BoundedWindow"];

/// Does this code line declare a struct field of a queue-bearing type?
/// Matches `name: FifoServer`, `name: Vec<Coverage>`, fully qualified
/// paths, etc. — any `: ... Type` with the type used in field position.
fn declares_queue_field(code: &str) -> Option<&'static str> {
    let trimmed = code.trim_start();
    // Field declarations, not uses: `ident: ... QueueType ... ,` — require
    // a colon before the type name and exclude fn signatures/impl lines.
    if trimmed.starts_with("fn ")
        || trimmed.starts_with("pub fn ")
        || trimmed.starts_with("impl")
        || trimmed.starts_with("use ")
    {
        return None;
    }
    let colon = code.find(':')?;
    let after = &code[colon..];
    for ty in QUEUE_TYPES {
        if let Some(pos) = after.find(ty) {
            let bytes = after.as_bytes();
            let end = pos + ty.len();
            let left_ok =
                pos == 0 || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
            let right_ok =
                end >= after.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
            // `Coverage::new()` etc. is a use, not a declaration.
            let is_path_call = after[end..].starts_with("::");
            if left_ok && right_ok && !is_path_call {
                return Some(ty);
            }
        }
    }
    None
}

/// Verify that every module under [`INVARIANT_SCAN_ROOT`] that declares a
/// queue-bearing field also contains at least one `impl Invariants for`.
pub fn run_invariant_hooks(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in rust_files(&root.join(INVARIANT_SCAN_ROOT)) {
        let Ok(src) = SourceFile::load(&file) else {
            continue;
        };
        let mut first_decl: Option<(usize, &'static str)> = None;
        let mut has_hook = false;
        for (idx, line) in src.lines.iter().enumerate() {
            if src.is_test_line(idx) {
                break;
            }
            let code = code_part(line);
            if code.contains("impl Invariants for")
                || code.contains("impl crate::invariants::Invariants for")
            {
                has_hook = true;
            }
            if first_decl.is_none() {
                if let Some(ty) = declares_queue_field(code) {
                    if !src.is_suppressed(idx, rules::INVARIANT_HOOK_MISSING) {
                        first_decl = Some((idx + 1, ty));
                    }
                }
            }
        }
        if let Some((line, ty)) = first_decl {
            if !has_hook {
                findings.push(Finding {
                    rule: rules::INVARIANT_HOOK_MISSING,
                    file: file.clone(),
                    line,
                    message: format!(
                        "module declares a `{ty}` field but registers no `impl Invariants for` hook"
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 4: module counter registration
// ---------------------------------------------------------------------

/// Directory whose `SimModule` implementations are audited.
pub const MODULE_SCAN_ROOT: &str = "crates/simarch/src";

/// Verify that every `impl SimModule for` under [`MODULE_SCAN_ROOT`] routes
/// its counter list through `crate::module::registered`, which debug-asserts
/// each name against `pmu::registry`. A module returning a hand-written
/// slice would silently drift from the registry the moment a counter is
/// renamed; the `registered` choke point turns that into a test failure.
pub fn run_module_registration(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in rust_files(&root.join(MODULE_SCAN_ROOT)) {
        let Ok(src) = SourceFile::load(&file) else {
            continue;
        };
        let mut first_impl: Option<usize> = None;
        let mut has_registration = false;
        for (idx, line) in src.lines.iter().enumerate() {
            if src.is_test_line(idx) {
                break;
            }
            let code = code_part(line);
            if code.contains("registered(") {
                has_registration = true;
            }
            if first_impl.is_none()
                && (code.contains("impl SimModule for")
                    || code.contains("impl crate::module::SimModule for"))
                && !src.is_suppressed(idx, rules::MODULE_COUNTER_REGISTRATION)
            {
                first_impl = Some(idx + 1);
            }
        }
        if let Some(line) = first_impl {
            if !has_registration {
                findings.push(Finding {
                    rule: rules::MODULE_COUNTER_REGISTRATION,
                    file: file.clone(),
                    line,
                    message: "`impl SimModule` must route `counters()` through \
                              `crate::module::registered` so the names stay \
                              pinned to pmu::registry"
                        .to_string(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 5: observability choke point
// ---------------------------------------------------------------------

/// The one source directory allowed to read the wall clock.
pub const OBS_SCAN_ROOT: &str = "crates/obs/src";

/// The one file inside it allowed to name `Instant`.
pub const OBS_CLOCK_FILE: &str = "clock.rs";

/// Verify the wall-clock choke point: within `crates/obs/src`, the type
/// `Instant` (and `SystemTime`) may be named only in `clock.rs`, and that
/// file must contain exactly one `Instant::now` call site, carrying a
/// `pflint::allow(wall-clock)` marker. Combined with the determinism lint
/// over the model crates (which bans `Instant` outright), this pins every
/// clock read in the workspace to one audited line.
pub fn run_obs_choke_point(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut now_sites = 0usize;
    let base = root.join(OBS_SCAN_ROOT);
    if !base.is_dir() {
        // No obs crate in this tree (fixture workspaces): nothing to police.
        return findings;
    }
    for file in rust_files(&base) {
        let in_clock = file.file_name().is_some_and(|n| n == OBS_CLOCK_FILE);
        let Ok(src) = SourceFile::load(&file) else {
            continue;
        };
        for (idx, line) in src.lines.iter().enumerate() {
            if src.is_test_line(idx) {
                break;
            }
            let code = code_part(line);
            if !code.contains("Instant") && !code.contains("SystemTime") {
                continue;
            }
            if !in_clock {
                if src.is_suppressed(idx, rules::OBS_CHOKE_POINT) {
                    continue;
                }
                findings.push(Finding {
                    rule: rules::OBS_CHOKE_POINT,
                    file: file.clone(),
                    line: idx + 1,
                    message: format!(
                        "wall-clock type outside the `{OBS_CLOCK_FILE}` choke point; \
                         use obs::clock::now_ns instead"
                    ),
                });
                continue;
            }
            if code.contains("Instant::now") {
                now_sites += 1;
                if !src.is_suppressed(idx, rules::WALL_CLOCK) {
                    findings.push(Finding {
                        rule: rules::OBS_CHOKE_POINT,
                        file: file.clone(),
                        line: idx + 1,
                        message: "the choke-point clock read must carry \
                                  `pflint::allow(wall-clock)`"
                            .to_string(),
                    });
                }
            }
        }
    }
    if now_sites != 1 {
        findings.push(Finding {
            rule: rules::OBS_CHOKE_POINT,
            file: root.join(OBS_SCAN_ROOT).join(OBS_CLOCK_FILE),
            line: 1,
            message: format!(
                "expected exactly one `Instant::now` call site in the choke point, found {now_sites}"
            ),
        });
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 6: fault-plan determinism
// ---------------------------------------------------------------------

/// Directories scanned for fault-plan construction sites. Vendored crates
/// and `pflint` itself (whose needle tables would self-trip) are excluded
/// by listing the roots explicitly.
pub const FAULT_PLAN_SCAN_ROOTS: &[&str] = &[
    "crates/simarch/src",
    "crates/core/src",
    "crates/bench/src",
    "crates/tiering/src",
    "tests",
];

/// A file is subject to the rule when its code mentions one of these.
const FAULT_PLAN_MARKERS: &[&str] = &["FaultPlan", "FaultWindow", "fault_plan"];

/// (needle, advice) — non-determinism sources forbidden wherever fault
/// plans are built or applied.
const FAULT_PLAN_NEEDLES: &[(&str, &str)] = &[
    (
        "thread_rng",
        "fault schedules must be a pure function of an explicit seed (FaultPlan::from_seed)",
    ),
    (
        "from_entropy",
        "fault schedules must be a pure function of an explicit seed (use seed_from_u64)",
    ),
    ("OsRng", "OS entropy has no place in a fault schedule"),
    (
        "rand::random",
        "implicitly OS-seeded; derive fault windows from an explicit seed",
    ),
    (
        "Instant::now",
        "fault windows are epoch-indexed; the wall clock must not shape them",
    ),
    (
        "SystemTime",
        "fault windows are epoch-indexed; the wall clock must not shape them",
    ),
];

/// Verify fault-plan determinism: every file under
/// [`FAULT_PLAN_SCAN_ROOTS`] whose code names a `FaultPlan`/`FaultWindow`
/// must be free of OS entropy and wall-clock reads. Unlike the general
/// determinism lint, test lines are **not** exempt — a fault schedule in a
/// test must replay bit-identically too, or the ground truth the anomaly
/// detector is validated against drifts run-to-run.
pub fn run_fault_plan_determinism(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rel in FAULT_PLAN_SCAN_ROOTS {
        for file in rust_files(&root.join(rel)) {
            let Ok(src) = SourceFile::load(&file) else {
                continue;
            };
            let subject = src
                .lines
                .iter()
                .any(|l| FAULT_PLAN_MARKERS.iter().any(|m| code_part(l).contains(m)));
            if !subject {
                continue;
            }
            for (idx, line) in src.lines.iter().enumerate() {
                let code = code_part(line);
                for &(needle, advice) in FAULT_PLAN_NEEDLES {
                    if !code.contains(needle) {
                        continue;
                    }
                    if src.is_suppressed(idx, rules::FAULT_PLAN_DETERMINISM) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: rules::FAULT_PLAN_DETERMINISM,
                        file: file.clone(),
                        line: idx + 1,
                        message: format!("`{needle}` in a fault-plan file: {advice}"),
                    });
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Analysis 7: ingest hot path
// ---------------------------------------------------------------------

/// Files whose `ingest*` function bodies must stay free of string
/// allocation: the steady-state epoch loops covered by the allocation-free
/// guarantee (PERFORMANCE.md, enforced at runtime by
/// `crates/tsdb/tests/alloc_free.rs`).
pub const INGEST_HOT_PATH_FILES: &[&str] =
    &["crates/tsdb/src/db.rs", "crates/core/src/materializer.rs"];

/// (needle, advice) — string-allocating calls forbidden inside an ingest
/// body. Each of these heap-allocates per call, which in the per-epoch grid
/// means thousands of allocations per simulated second.
const INGEST_HOT_PATH_NEEDLES: &[(&str, &str)] = &[
    (
        "format!",
        "string formatting allocates per epoch; resolve a SeriesId via series_handle up front",
    ),
    (
        ".to_string(",
        "allocates per epoch; intern or cache the string in the cold handle-resolution path",
    ),
    (
        "String::from(",
        "allocates per epoch; intern or cache the string in the cold handle-resolution path",
    ),
    (
        ".to_owned(",
        "allocates per epoch; borrow instead, or move the copy to the cold path",
    ),
];

/// Does this line open a hot ingest function? Matches `fn ingest(` and
/// `fn ingest_*(` (any visibility), but not names that merely contain
/// "ingest" (`fn reingest`, `ensure_app_handles`, ...).
fn is_ingest_fn_start(code: &str) -> bool {
    let Some(pos) = code.find("fn ingest") else {
        return false;
    };
    matches!(
        code.as_bytes().get(pos + "fn ingest".len()),
        Some(b'(') | Some(b'_')
    )
}

/// Verify the ingest hot path stays allocation-free at the source level:
/// within [`INGEST_HOT_PATH_FILES`], the body of every `fn ingest*` must
/// contain no string-allocating calls. Function bodies are delimited by
/// brace counting over comment-stripped lines (naive about braces inside
/// string literals, which these files do not put in ingest bodies); test
/// modules are exempt per the workspace convention.
pub fn run_ingest_hot_path(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rel in INGEST_HOT_PATH_FILES {
        let file = root.join(rel);
        let Ok(src) = SourceFile::load(&file) else {
            continue;
        };
        let mut in_fn = false;
        let mut depth = 0i32;
        let mut entered = false;
        for (idx, line) in src.lines.iter().enumerate() {
            if src.is_test_line(idx) {
                break;
            }
            let code = code_part(line);
            if !in_fn && is_ingest_fn_start(code) {
                in_fn = true;
                depth = 0;
                entered = false;
            }
            if !in_fn {
                continue;
            }
            for &(needle, advice) in INGEST_HOT_PATH_NEEDLES {
                if !code.contains(needle) {
                    continue;
                }
                if src.is_suppressed(idx, rules::INGEST_HOT_PATH) {
                    continue;
                }
                findings.push(Finding {
                    rule: rules::INGEST_HOT_PATH,
                    file: file.clone(),
                    line: idx + 1,
                    message: format!("`{needle}` in an ingest hot loop: {advice}"),
                });
            }
            for b in code.bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        entered = true;
                    }
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            if entered && depth <= 0 {
                in_fn = false;
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

/// Run all seven analyses with the default configuration.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = run_determinism(root);
    findings.extend(run_pmu_consistency(root));
    findings.extend(run_invariant_hooks(root));
    findings.extend(run_module_registration(root));
    findings.extend(run_obs_choke_point(root));
    findings.extend(run_fault_plan_determinism(root));
    findings.extend(run_ingest_hot_path(root));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_refs_parses_qualified_paths() {
        let refs = variant_refs("bank.inc(ImcEvent::RpqInserts); x(pmu::CoreEvent::InstRetired)");
        assert!(refs
            .iter()
            .any(|(e, v, _)| e == "ImcEvent" && v == "RpqInserts"));
        assert!(refs
            .iter()
            .any(|(e, v, _)| e == "CoreEvent" && v == "InstRetired"));
    }

    #[test]
    fn variant_refs_skips_associated_fns() {
        assert!(variant_refs("for e in CoreEvent::all() {}").is_empty());
    }

    #[test]
    fn event_literals_require_known_family() {
        assert_eq!(
            event_name_literals(r#"x("unc_m_rpq_inserts")"#),
            vec!["unc_m_rpq_inserts"]
        );
        assert!(event_name_literals(r#"run("519.lbm_r")"#).is_empty());
        assert!(event_name_literals(r#"msg("hello world")"#).is_empty());
    }

    #[test]
    fn queue_field_declarations_detected() {
        assert_eq!(
            declares_queue_field("    server: FifoServer,"),
            Some("FifoServer")
        );
        assert_eq!(
            declares_queue_field("    tor_ne: Vec<Coverage>,"),
            Some("Coverage")
        );
        assert_eq!(
            declares_queue_field("    pub sb: BoundedWindow,"),
            Some("BoundedWindow")
        );
        assert_eq!(
            declares_queue_field("        port: FifoServer::new(),"),
            None
        );
        assert_eq!(
            declares_queue_field("use crate::queues::{Coverage, FifoServer};"),
            None
        );
        assert_eq!(
            declares_queue_field("fn serve(&mut self) -> Coverage {"),
            None
        );
    }

    #[test]
    fn code_part_strips_comments() {
        assert_eq!(code_part("let x = 1; // HashMap here"), "let x = 1; ");
        assert_eq!(code_part("// all comment"), "");
    }

    /// Build a throwaway workspace with the given `crates/obs/src` files.
    fn obs_fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
        let root = std::env::temp_dir().join(format!("pflint-fixture-{name}"));
        let src = root.join("crates/obs/src");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&src).unwrap();
        for (file, text) in files {
            std::fs::write(src.join(file), text).unwrap();
        }
        root
    }

    #[test]
    fn choke_point_accepts_the_sanctioned_shape() {
        let root = obs_fixture(
            "ok",
            &[(
                "clock.rs",
                "use std::time::Instant; // pflint::allow(wall-clock)\n\
                 pub fn now() -> u64 { Instant::now().elapsed().as_nanos() as u64 } // pflint::allow(wall-clock)\n",
            )],
        );
        assert!(run_obs_choke_point(&root).is_empty());
    }

    #[test]
    fn choke_point_rejects_instant_outside_clock_rs() {
        let root = obs_fixture(
            "stray",
            &[
                (
                    "clock.rs",
                    "pub fn now() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 } // pflint::allow(wall-clock)\n",
                ),
                ("span.rs", "fn ts() { let _ = std::time::Instant::now(); }\n"),
            ],
        );
        let findings = run_obs_choke_point(&root);
        assert!(findings
            .iter()
            .any(|f| f.rule == rules::OBS_CHOKE_POINT && f.file.ends_with("span.rs")));
    }

    #[test]
    fn choke_point_requires_exactly_one_clock_read() {
        let root = obs_fixture(
            "dup",
            &[(
                "clock.rs",
                "fn a() { let _ = Instant::now(); } // pflint::allow(wall-clock)\n\
                 fn b() { let _ = Instant::now(); } // pflint::allow(wall-clock)\n",
            )],
        );
        let findings = run_obs_choke_point(&root);
        assert!(
            findings.iter().any(|f| f.message.contains("found 2")),
            "{findings:?}"
        );

        let none = obs_fixture("none", &[("clock.rs", "pub fn now() -> u64 { 0 }\n")]);
        let findings = run_obs_choke_point(&none);
        assert!(findings.iter().any(|f| f.message.contains("found 0")));
    }

    #[test]
    fn choke_point_requires_the_allow_marker() {
        let root = obs_fixture(
            "unmarked",
            &[(
                "clock.rs",
                "pub fn now() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            )],
        );
        let findings = run_obs_choke_point(&root);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("pflint::allow(wall-clock)")));
    }

    /// Build a throwaway workspace with one file at `rel` (relative to the
    /// workspace root).
    fn fault_fixture(name: &str, rel: &str, text: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("pflint-fixture-{name}"));
        let path = root.join(rel);
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, text).unwrap();
        root
    }

    #[test]
    fn fault_plan_entropy_is_flagged() {
        let root = fault_fixture(
            "fault-entropy",
            "crates/simarch/src/faults.rs",
            "fn plan() { let p = FaultPlan::new(); let r = rand::thread_rng(); }\n",
        );
        let findings = run_fault_plan_determinism(&root);
        assert!(
            findings.iter().any(
                |f| f.rule == rules::FAULT_PLAN_DETERMINISM && f.message.contains("thread_rng")
            ),
            "{findings:?}"
        );
    }

    #[test]
    fn fault_plan_rule_covers_test_lines() {
        let root = fault_fixture(
            "fault-testmod",
            "tests/fault_prop.rs",
            "#[cfg(test)]\nmod t { fn f() { let _ = FaultPlan::new(); let _ = rand::random::<u64>(); } }\n",
        );
        assert!(
            !run_fault_plan_determinism(&root).is_empty(),
            "test code gets no exemption from fault-plan determinism"
        );
    }

    #[test]
    fn seeded_fault_plans_are_clean() {
        let root = fault_fixture(
            "fault-seeded",
            "crates/simarch/src/faults.rs",
            "fn plan(seed: u64) { let p = FaultPlan::from_seed(seed, 4, &cfg, 100); }\n",
        );
        assert!(run_fault_plan_determinism(&root).is_empty());
    }

    #[test]
    fn files_without_fault_plans_are_out_of_scope() {
        let root = fault_fixture(
            "fault-unrelated",
            "crates/simarch/src/other.rs",
            "fn f() { let r = rand::thread_rng(); } // a different lint's problem\n",
        );
        assert!(run_fault_plan_determinism(&root).is_empty());
    }

    #[test]
    fn fault_plan_suppression_marker_works() {
        let root = fault_fixture(
            "fault-allow",
            "crates/bench/src/lib.rs",
            "fn f() { let p = FaultPlan::new(); \
             let t = SystemTime::now(); // pflint::allow(fault-plan-determinism)\n}\n",
        );
        assert!(run_fault_plan_determinism(&root).is_empty());
    }
}
