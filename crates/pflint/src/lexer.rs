//! A small, std-only Rust lexer: the foundation of pflint's analyses.
//!
//! The old engine scanned raw text lines and stripped `//` comments with a
//! `find("//")` — which meant braces inside string literals broke function
//! body extraction, rule keywords inside block comments produced phantom
//! findings, and `#[cfg(test)]` anywhere in a file exempted everything
//! after it. This lexer fixes the class: it splits a source file into a
//! token stream that distinguishes code from comments, string/char
//! literals, and lifetimes, so every downstream analysis can reason about
//! *code* and only code.
//!
//! Design constraints:
//!
//! * **Lossless.** Concatenating `token.text` in order reproduces the
//!   input byte-for-byte (property-tested in `tests/lexer_roundtrip.rs`).
//!   Every analysis result can therefore be mapped back to an exact
//!   `file:line`.
//! * **Total.** Malformed input (unterminated strings/comments) never
//!   panics; the trailing bytes become one final token.
//! * **Honest about Rust's dark corners.** Nested block comments, raw
//!   strings with arbitrary `#` fences, byte/raw-byte strings, raw
//!   identifiers (`r#fn`), char literals vs. lifetimes (`'a'` vs `'a`),
//!   and float exponents are all handled. Full grammar fidelity is *not*
//!   a goal — pflint needs token classes, not a parse tree.

/// The token classes pflint distinguishes. Comments and literals are the
/// classes that get masked out of "code" (see `source::SourceFile`);
/// everything else participates in rule matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Spaces, tabs, newlines, carriage returns.
    Whitespace,
    /// `// ...` to end of line, including doc comments (`///`, `//!`).
    LineComment,
    /// `/* ... */`, nested, including doc block comments.
    BlockComment,
    /// `"..."` or `b"..."`, with escapes.
    Str,
    /// `r"..."`, `r#"..."#`, `br##"..."##` — no escapes, `#` fences.
    RawStr,
    /// `'x'`, `'\n'`, `b'\xff'`.
    Char,
    /// `'a`, `'static`, `'_` — an apostrophe not closing on one char.
    Lifetime,
    /// Identifiers and keywords, including raw identifiers (`r#type`).
    Ident,
    /// Numeric literals (int, float, hex/oct/bin, suffixed, exponent).
    Num,
    /// A single byte of punctuation/operator.
    Punct,
}

impl TokKind {
    /// Tokens whose text is *not* code: analyses mask these out before
    /// matching any rule needle.
    pub fn is_code(self) -> bool {
        !matches!(
            self,
            TokKind::LineComment
                | TokKind::BlockComment
                | TokKind::Str
                | TokKind::RawStr
                | TokKind::Char
        )
    }

    /// Comment tokens carry suppression markers (`pflint::allow(...)`) and
    /// hot-path annotations (`pflint::hot`).
    pub fn is_comment(self) -> bool {
        matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// One token: a classified slice of the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token<'a> {
    pub kind: TokKind,
    /// The exact source text (round-trips losslessly).
    pub text: &'a str,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// 1-based line number of the token's first byte.
    pub line: usize,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scan a `"`-delimited string starting at `i` (the opening quote).
/// Returns the index one past the closing quote (or EOF if unterminated).
fn scan_string(b: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Scan a raw string whose opening quote is at `i`, fenced by `hashes`
/// `#` bytes. Returns one past the closing fence (or EOF).
fn scan_raw_string(b: &[u8], mut i: usize, hashes: usize) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Scan a block comment starting at `i` (the `/`). Handles nesting.
fn scan_block_comment(b: &[u8], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < b.len() {
        if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            depth += 1;
            i += 2;
        } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    i
}

/// Scan a numeric literal starting at `i` (a digit). Handles `0x`/`0o`/
/// `0b` radixes, `_` separators, type suffixes, a single `.` followed by a
/// digit, and decimal exponents with signs (`1e-5`).
fn scan_number(b: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    let radix_prefixed = b[start] == b'0'
        && i < b.len()
        && matches!(b[i], b'x' | b'o' | b'b' | b'X' | b'O' | b'B')
        && i + 1 < b.len()
        && (b[i + 1].is_ascii_alphanumeric() || b[i + 1] == b'_');
    let mut seen_dot = false;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_alphanumeric() || c == b'_' {
            // Decimal exponent: `1e-5`, `2.5E+10`. Never inside 0x/0o/0b,
            // where `e` is a digit and `-` must stay a separate operator.
            if !radix_prefixed
                && (c == b'e' || c == b'E')
                && i + 1 < b.len()
                && (b[i + 1] == b'+' || b[i + 1] == b'-')
                && i + 2 < b.len()
                && b[i + 2].is_ascii_digit()
            {
                i += 2;
            }
            i += 1;
        } else if c == b'.'
            && !seen_dot
            && !radix_prefixed
            && i + 1 < b.len()
            && b[i + 1].is_ascii_digit()
        {
            // `1.5` continues the literal; `0..5` leaves `..` to punct.
            seen_dot = true;
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// Count `#` bytes at `i`.
fn count_hashes(b: &[u8], i: usize) -> usize {
    b[i..].iter().take_while(|&&c| c == b'#').count()
}

/// Lex `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let start = i;
        let start_line = line;
        let kind = match b[i] {
            c if c.is_ascii_whitespace() => {
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                TokKind::Whitespace
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                TokKind::LineComment
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i = scan_block_comment(b, i);
                TokKind::BlockComment
            }
            b'"' => {
                i = scan_string(b, i);
                TokKind::Str
            }
            b'\'' => {
                // Char literal or lifetime. `'\...'` and `'<one char>'`
                // are chars; otherwise it is a lifetime (`'a`, `'_`).
                let next = b.get(i + 1).copied();
                match next {
                    Some(b'\\') => {
                        // Escaped char: skip to the closing quote.
                        i += 2; // ' and backslash
                        i = (i + 1).min(b.len()); // the escaped byte
                        while i < b.len() && b[i] != b'\'' {
                            i += 1; // \x41, \u{1F600}
                        }
                        i = (i + 1).min(b.len());
                        TokKind::Char
                    }
                    Some(c) if c != b'\'' => {
                        // Width of one UTF-8 char after the quote.
                        let w = src[i + 1..].chars().next().map_or(1, |ch| ch.len_utf8());
                        if b.get(i + 1 + w) == Some(&b'\'') {
                            i += 2 + w;
                            TokKind::Char
                        } else {
                            i += 1;
                            while i < b.len() && is_ident_continue(b[i]) {
                                i += 1;
                            }
                            TokKind::Lifetime
                        }
                    }
                    _ => {
                        // `''` or a trailing `'`: lone punct-ish quote.
                        i += 1;
                        TokKind::Punct
                    }
                }
            }
            b'r' | b'b' if raw_or_byte_literal(b, i).is_some() => {
                let (kind, end) = raw_or_byte_literal(b, i).unwrap_or((TokKind::Punct, i + 1));
                i = end;
                kind
            }
            c if is_ident_start(c) => {
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                TokKind::Ident
            }
            c if c.is_ascii_digit() => {
                i = scan_number(b, i);
                TokKind::Num
            }
            _ => {
                i += 1;
                TokKind::Punct
            }
        };
        let text = &src[start..i];
        line += text.bytes().filter(|&c| c == b'\n').count();
        out.push(Token {
            kind,
            text,
            start,
            line: start_line,
        });
    }
    out
}

/// At `i` sits `r` or `b`. If it opens a raw string, byte string, byte
/// char, or raw identifier, return its kind and end; otherwise `None`
/// (plain identifier — the main loop falls through).
fn raw_or_byte_literal(b: &[u8], i: usize) -> Option<(TokKind, usize)> {
    match b[i] {
        b'r' => {
            let hashes = count_hashes(b, i + 1);
            if b.get(i + 1 + hashes) == Some(&b'"') {
                // r"..." or r#"..."# — raw string.
                return Some((TokKind::RawStr, scan_raw_string(b, i + 1 + hashes, hashes)));
            }
            if hashes == 1 && b.get(i + 2).copied().is_some_and(is_ident_start) {
                // r#type — raw identifier.
                let mut j = i + 2;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                return Some((TokKind::Ident, j));
            }
            None
        }
        b'b' => {
            if b.get(i + 1) == Some(&b'"') {
                // b"..." — byte string, same escapes as str.
                return Some((TokKind::Str, scan_string(b, i + 1)));
            }
            if b.get(i + 1) == Some(&b'\'') {
                // b'x' / b'\xff' — byte char.
                let mut j = i + 2;
                if b.get(j) == Some(&b'\\') {
                    j += 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                } else if j < b.len() {
                    j += 1;
                }
                return Some((TokKind::Char, (j + 1).min(b.len())));
            }
            if b.get(i + 1) == Some(&b'r') {
                let hashes = count_hashes(b, i + 2);
                if b.get(i + 2 + hashes) == Some(&b'"') {
                    // br"..." / br#"..."# — raw byte string.
                    return Some((TokKind::RawStr, scan_raw_string(b, i + 2 + hashes, hashes)));
                }
            }
            None
        }
        _ => None,
    }
}

/// Reassemble a token stream into source text (the round-trip inverse of
/// [`lex`]).
pub fn reassemble(tokens: &[Token<'_>]) -> String {
    tokens.iter().map(|t| t.text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn roundtrip(src: &str) {
        assert_eq!(reassemble(&lex(src)), src, "round-trip failed for {src:?}");
    }

    #[test]
    fn strings_hide_braces_and_comments() {
        let toks = kinds(r#"let s = "a { b // } /*";"#);
        assert!(toks.contains(&(TokKind::Str, r#""a { b // } /*""#)));
        // No comment token was produced.
        assert!(toks.iter().all(|(k, _)| !k.is_comment()));
        roundtrip(r#"let s = "a { b // } /*";"#);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "a /* outer /* inner */ still outer */ b";
        let toks = kinds(src);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokKind::BlockComment)
                .count(),
            1
        );
        assert!(toks.contains(&(TokKind::Ident, "a")));
        assert!(toks.contains(&(TokKind::Ident, "b")));
        roundtrip(src);
    }

    #[test]
    fn raw_strings_ignore_escapes_and_quotes() {
        let src = r##"let s = r#"say "hi" \ {"#;"##;
        let toks = kinds(src);
        assert!(toks.contains(&(TokKind::RawStr, r##"r#"say "hi" \ {"#"##)));
        roundtrip(src);
        roundtrip("r\"plain\" + br##\"fenced \"# inner\"##");
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("'a' 'static '_ '\\n' b'x' 'é'");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'static", "'_"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(chars, vec!["'a'", "'\\n'", "b'x'", "'é'"]);
        roundtrip("'a' 'static '_ '\\n' b'x' 'é'");
    }

    #[test]
    fn raw_identifiers_are_idents_not_raw_strings() {
        let toks = kinds("r#fn r#type r\"s\"");
        assert!(toks.contains(&(TokKind::Ident, "r#fn")));
        assert!(toks.contains(&(TokKind::Ident, "r#type")));
        assert!(toks.contains(&(TokKind::RawStr, "r\"s\"")));
        roundtrip("r#fn r#type r\"s\"");
    }

    #[test]
    fn numbers_keep_ranges_and_exponents_apart() {
        let toks = kinds("0..5 1.5 1e-5 0x1E-5 1_000u64");
        assert!(toks.contains(&(TokKind::Num, "0")));
        assert!(toks.contains(&(TokKind::Num, "5")));
        assert!(toks.contains(&(TokKind::Num, "1.5")));
        assert!(toks.contains(&(TokKind::Num, "1e-5")));
        // Hex: the `-` stays an operator.
        assert!(toks.contains(&(TokKind::Num, "0x1E")));
        assert!(toks.contains(&(TokKind::Punct, "-")));
        assert!(toks.contains(&(TokKind::Num, "1_000u64")));
        roundtrip("0..5 1.5 1e-5 0x1E-5 1_000u64");
    }

    #[test]
    fn unterminated_inputs_never_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b'", "x /* /* */"] {
            roundtrip(src);
        }
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let src = "a\nb /* c\nd */ e\nf";
        let toks = lex(src);
        let at = |text: &str| toks.iter().find(|t| t.text == text).unwrap().line;
        assert_eq!(at("a"), 1);
        assert_eq!(at("b"), 2);
        assert_eq!(at("e"), 3);
        assert_eq!(at("f"), 4);
        assert_eq!(at("/* c\nd */"), 2);
    }

    #[test]
    fn doc_comments_are_comments() {
        let toks = kinds("/// doc\n//! inner\n/** block */ fn x() {}");
        assert_eq!(toks.iter().filter(|(k, _)| k.is_comment()).count(), 3);
        roundtrip("/// doc\n//! inner\n/** block */ fn x() {}");
    }
}
