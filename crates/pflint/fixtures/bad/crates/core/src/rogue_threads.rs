// pflint fixture: concurrency primitives outside the sanctioned modules.
use std::sync::Mutex;

pub fn fan_out(shared: &Mutex<u64>) {
    let _h = std::thread::spawn(|| {});
    let _c = std::sync::atomic::AtomicU64::new(0);
    let _v = unsafe { *shared.data_ptr() };
}
