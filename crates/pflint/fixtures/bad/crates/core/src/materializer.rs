// pflint fixture: allocations inside `// pflint::hot` bodies, including
// one the old brace counter lost behind a close-brace in a string.
// pflint::hot
pub fn ingest_path_map(ts: u64, rows: &mut Vec<(String, u64)>) {
    for core in 0..4u64 {
        rows.push((String::from("series"), ts + core));
        rows.push((core.to_string(), ts));
    }
}

// pflint::hot
pub fn ingest_queues(ts: u64, rows: &mut Vec<(String, u64)>) {
    let close_brace = "}";
    rows.push((format!("q{ts}"), ts + close_brace.len() as u64));
}

pub fn describe(core: u64) -> String {
    format!("core {core}")
}
