// pflint fixture: string allocation inside the per-epoch ingest loop.
pub fn ingest_path_map(ts: u64, rows: &mut Vec<(String, u64)>) {
    for core in 0..4u64 {
        rows.push((String::from("series"), ts + core));
        rows.push((core.to_string(), ts));
    }
}

pub fn describe(core: u64) -> String {
    format!("core {core}")
}
