// pflint fixture: a hot annotation that precedes no function.
// pflint::hot
pub struct NotAFunction;
