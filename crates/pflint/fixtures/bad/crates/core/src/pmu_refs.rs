// pflint fixture: counter references that do not resolve in pmu::registry.
use pmu::{CoreEvent, ImcEvent};

pub fn sample() -> &'static str {
    let _known = CoreEvent::InstRetired;
    let _typo = ImcEvent::RpqInsertz;
    "unc_m_cas_count.bogus"
}
