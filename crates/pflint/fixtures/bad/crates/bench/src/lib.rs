// pflint fixture: a CSV writer that panics on I/O failure.
pub fn write_csv(path: &str, rows: &[String]) {
    let mut out = std::fs::File::create(path).unwrap();
    for r in rows {
        std::io::Write::write_all(&mut out, r.as_bytes()).expect("csv write");
    }
}
