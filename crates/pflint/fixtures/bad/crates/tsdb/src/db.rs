// pflint fixture: nondeterministic scan order plus panicking file I/O.
use std::collections::HashSet;

pub fn load(path: &str) -> HashSet<String> {
    let text = std::fs::read_to_string(path).expect("tsdb read");
    text.lines().map(|s| s.to_string()).collect()
}

// pflint::hot
pub fn ingest(ts: u64, out: &mut Vec<String>) {
    out.push(format!("series-{ts}"));
    let tag = ts.to_string();
    out.push(tag);
}

pub fn series_key(ts: u64) -> String {
    format!("key-{ts}")
}
