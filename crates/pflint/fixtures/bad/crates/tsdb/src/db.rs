// pflint fixture: nondeterministic scan order plus panicking file I/O.
use std::collections::HashSet;

pub fn load(path: &str) -> HashSet<String> {
    let text = std::fs::read_to_string(path).expect("tsdb read");
    text.lines().map(|s| s.to_string()).collect()
}
