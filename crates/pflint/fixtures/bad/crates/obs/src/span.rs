// Violation: names a wall-clock type outside the clock.rs choke point.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
