// pflint fixture: panic surfaces in a daemon-path module.
pub fn summarize(xs: &[u64], n: u64) -> u64 {
    let first = xs.first().copied().unwrap();
    let second = xs[1];
    let ratio = second / n;
    assert!(ratio > 0);
    first + ratio
}
