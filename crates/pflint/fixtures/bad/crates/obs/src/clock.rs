// Two violations: the call site is unmarked, and there are two of them
// (the second is marked but still pushes the count past one).
pub fn now_ns() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}

pub fn again_ns() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64 // pflint::allow(wall-clock)
}
