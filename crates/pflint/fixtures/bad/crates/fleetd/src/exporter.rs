// pflint fixture: fleetd concurrency outside the sanctioned shard module.
use std::sync::Mutex;

pub fn publish(counter: &Mutex<u64>) {
    let _h = std::thread::spawn(|| {});
    let _a = std::sync::atomic::AtomicU64::new(0);
    if let Ok(mut v) = counter.lock() {
        *v += 1;
    }
}
