// pflint fixture: panic surfaces on the fleetd daemon surface.
pub fn roll_up(series: &[u64], hosts: u64) -> u64 {
    let newest = series.last().copied().unwrap();
    let oldest = series[0];
    let per_host = newest / hosts;
    assert!(per_host >= oldest);
    per_host
}
