// pflint fixture: the misparse class the line-regex engine got wrong —
// needles in line comments, block comments, strings, and char literals
// are inert, but a suppression marker inside a string literal must not
// soothe the real hazard beside it.
pub fn keyword_soup() -> (&'static str, char) {
    /* Instant::now() in a block comment is documentation, not a hazard,
       and a HashMap<u64, u64> mentioned mid-comment is fine too. */
    let masked = "}} Instant::now() HashMap thread_rng() {{";
    let close = '}';
    (masked, close)
}

pub fn fake_marker() -> u128 {
    let (t, s) = (std::time::Instant::now(), "pflint::allow(wall-clock)");
    let _ = s;
    t.elapsed().as_nanos()
}
