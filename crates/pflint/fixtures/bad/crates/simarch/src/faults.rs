// pflint fixture: window validation that panics instead of returning Err.
pub fn push_window(windows: &mut Vec<(u64, u64)>, start: u64, end: u64) {
    if end <= start {
        panic!("empty window");
    }
    windows.push((start, end));
}
