// pflint fixture: deliberately nondeterministic simulator module.
use std::collections::HashMap;
use std::time::Instant;

pub struct BadCore {
    pub served: HashMap<u64, u64>,
    pub port: FifoServer,
}

pub fn bad_epoch() -> u128 {
    let t = Instant::now();
    let _r = rand::thread_rng();
    t.elapsed().as_nanos()
}
