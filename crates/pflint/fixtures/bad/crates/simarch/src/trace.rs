// pflint fixture: input-facing module that panics on malformed input.
pub fn parse(line: &str) -> u64 {
    line.trim().parse::<u64>().unwrap()
}
