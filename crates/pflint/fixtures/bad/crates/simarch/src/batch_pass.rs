// pflint fixture: a batch datapath pass that allocates per slice. The
// L1 pass runs once per scheduler slice, so a Vec born inside the body
// multiplies across millions of ops per second.
// pflint::hot
pub fn l1_pass(ops: &[(u64, u32)]) -> Vec<(u64, u32)> {
    let mut misses = Vec::new();
    for op in ops.iter().filter(|(line, _)| line % 3 != 0) {
        misses.push(*op);
    }
    misses
}

// pflint::hot
pub fn retire_pass(done: &[(u64, u32)]) -> Vec<u32> {
    done.iter().map(|(_, id)| *id).collect()
}
