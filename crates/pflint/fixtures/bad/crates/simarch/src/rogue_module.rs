//! Seeded violation: a SimModule advertising counters without routing the
//! list through `crate::module::registered`, so nothing pins the names to
//! the pmu registry.

impl SimModule for RogueModule {
    fn counters(&self) -> &'static [&'static str] {
        &["inst_retired.any", "unc_m_cas_count.rd"]
    }
}
