// pflint fixture: event-wheel hot paths that allocate per wakeup. The
// schedule/pop pair runs once per stage transition, so a heap
// allocation here multiplies across millions of pops per second.
// pflint::hot
pub fn schedule(slots: &mut Vec<Vec<(u64, u32)>>, tick: u64, item: u32) {
    let key = format!("slot{}", tick & 255);
    slots[(tick & 255) as usize].push((tick, item + key.len() as u32));
}

// pflint::hot
pub fn cascade(overflow: &[(u64, u32)]) -> Vec<(u64, u32)> {
    overflow.iter().copied().collect()
}
