//! Seeded violations for the fabric switch stage: a SimModule whose
//! counter list bypasses `crate::module::registered` — nothing pins the
//! per-port switch events to pmu::registry — and an arbitration tick
//! that reads the wall clock (fabric replay must be cycle-driven).

impl SimModule for RogueSwitch {
    fn counters(&self) -> &'static [&'static str] {
        &["unc_cxlsw_ingress_inserts.port", "unc_cxlsw_arb_grants.port"]
    }
    fn tick(&mut self, _until: u64) {
        let _grant_stamp = Instant::now();
    }
}
