use crate::faults::FaultPlan;

pub fn jittered_plan() -> FaultPlan {
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    FaultPlan::new()
}
