// pflint fixture: fleetd's sanctioned shard module — worker threads,
// channels, and the scrape-snapshot mutex are allowed here without
// suppression (CONCURRENCY_ALLOWLIST), but the file still has to clear
// panic-freedom and the determinism rules like the rest of the daemon.
pub fn round_trip(rounds: u64) -> u64 {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        for r in 0..rounds {
            if tx.send(r).is_err() {
                return;
            }
        }
    });
    let mut last = 0;
    while let Ok(r) = rx.recv() {
        last = r;
    }
    let _ = worker.join();
    last
}
