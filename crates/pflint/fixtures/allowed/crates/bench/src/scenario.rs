// pflint fixture: the sanctioned fan-out home — concurrency primitives
// are allowed here without suppression (CONCURRENCY_ALLOWLIST).
pub fn fan_out() -> usize {
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|_s| {
        cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    cursor.into_inner()
}
