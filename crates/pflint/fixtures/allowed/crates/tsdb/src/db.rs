// pflint fixture: ingest-body string work silenced by suppressions (both
// placements), plus cold-path formatting outside any ingest fn.
pub fn ingest(ts: u64, out: &mut Vec<String>) {
    // pflint::allow(ingest-hot-path)
    out.push(format!("legacy-{ts}"));
    let tag = ts.to_string(); // pflint::allow(ingest-hot-path)
    out.push(tag);
}

pub fn series_key(ts: u64) -> String {
    format!("key-{ts}")
}
