// pflint fixture: hot-body string work silenced by suppressions (both
// placements), plus cold-path formatting outside any annotated fn.
// pflint::hot
pub fn ingest(ts: u64, out: &mut Vec<String>) {
    // pflint::allow(hot-path-alloc)
    out.push(format!("legacy-{ts}"));
    let tag = ts.to_string(); // pflint::allow(hot-path-alloc)
    out.push(tag);
}

pub fn series_key(ts: u64) -> String {
    format!("key-{ts}")
}
