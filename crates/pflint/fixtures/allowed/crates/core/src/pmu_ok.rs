// pflint fixture: valid counter references resolve cleanly.
use pmu::{ChaEvent, CoreEvent, ImcEvent};

pub fn sample() -> &'static str {
    let _core = CoreEvent::InstRetired;
    let _cha = ChaEvent::ClockTicks;
    let _imc = ImcEvent::RpqInserts;
    let _apps = ["519.lbm_r", "505.mcf_r"]; // app names, not counter names
    "unc_m_rpq_inserts"
}
