// pflint fixture: daemon-path code written panic-free — .get() instead of
// indexing, checked division, debug_assert for invariants — plus a test
// module where panicking assertions are exempt.
pub fn mean_bucket(counts: &[u64], total: u64) -> u64 {
    debug_assert!(!counts.is_empty());
    let first = counts.first().copied().unwrap_or(0);
    first.checked_div(total).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exercised_with_test_only_panics() {
        assert_eq!(super::mean_bucket(&[4], 2), 2);
        let xs = [1u64, 2];
        assert!(xs[0] / xs[1] == 0);
    }
}
