// The sanctioned choke-point shape: one Instant::now call site, marked.
use std::time::Instant; // pflint::allow(wall-clock)

pub fn now_ns() -> u64 {
    static ORIGIN: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let origin = ORIGIN.get_or_init(Instant::now); // pflint::allow(wall-clock)
    origin.elapsed().as_nanos() as u64
}
