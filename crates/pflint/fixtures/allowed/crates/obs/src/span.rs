// Clock access outside clock.rs must route through the choke point.
pub fn stamp() -> u64 {
    crate::clock::now_ns()
}
