// pflint fixture: window validation propagates Result; the unwrap in the
// item-scoped test module below is exempt.
pub fn push_window(windows: &mut Vec<(u64, u64)>, start: u64, end: u64) -> Result<(), String> {
    if end <= start {
        return Err(format!("empty window [{start}, {end})"));
    }
    windows.push((start, end));
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn rejects_empty_windows() {
        let mut w = Vec::new();
        assert!(super::push_window(&mut w, 3, 3).is_err());
        super::push_window(&mut w, 0, 2).unwrap();
    }
}
