// pflint fixture: the same wheel hot paths made allocation-free — slots
// are preallocated by the cold constructor below and the cascade reuses
// a caller-owned scratch buffer instead of collecting a fresh Vec.
// pflint::hot
pub fn schedule(slots: &mut [Vec<(u64, u32)>], tick: u64, item: u32) {
    slots[(tick & 255) as usize].push((tick, item));
}

// pflint::hot
pub fn cascade(overflow: &[(u64, u32)], out: &mut Vec<(u64, u32)>) {
    out.extend_from_slice(overflow);
}

/// Cold path: allocation is fine outside `// pflint::hot` bodies.
pub fn new_slots() -> Vec<Vec<(u64, u32)>> {
    (0..256).map(|_| Vec::with_capacity(4)).collect()
}
