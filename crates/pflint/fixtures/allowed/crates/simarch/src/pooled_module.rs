//! The pooled-device shape stays clean: the per-host counter list goes
//! through `registered`, which debug-asserts every name against
//! pmu::registry, and the shared-MC state carries an Invariants hook.

impl crate::module::SimModule for PooledModule {
    fn counters(&self) -> &'static [&'static str] {
        crate::module::registered(&["unc_pool_mc_rd_cas.host"])
    }
}

impl crate::invariants::Invariants for PooledModule {}
