//! Suppression: an explicitly-allowed counters-free module stays out of
//! the registration audit.

// pflint::allow(module-counter-registration)
impl SimModule for SuppressedLegacyModule {}
