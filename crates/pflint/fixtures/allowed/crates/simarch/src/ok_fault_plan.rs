use crate::faults::FaultPlan;

/// Fault schedules are pure functions of an explicit seed (FAULTS.md);
/// the one sanctioned clock read below shows rule-stacking suppression.
pub fn seeded_plan(seed: u64, cfg: &crate::MachineConfig) -> FaultPlan {
    FaultPlan::from_seed(seed, 4, cfg, 100)
}

pub fn wall_deadline() -> std::time::Duration {
    // Benign: converts a *reporting* deadline, never shapes a window.
    // pflint::allow(fault-plan-determinism) pflint::allow(wall-clock)
    std::time::SystemTime::UNIX_EPOCH.elapsed().unwrap_or_default()
}
