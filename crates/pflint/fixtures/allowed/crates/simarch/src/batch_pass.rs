// pflint fixture: the same batch passes arena-style — the miss list and
// the retire queue live in caller-owned scratch buffers cleared per
// slice, so the steady state never touches the allocator.
// pflint::hot
pub fn l1_pass(ops: &[(u64, u32)], misses: &mut Vec<(u64, u32)>) {
    misses.clear();
    for op in ops.iter().filter(|(line, _)| line % 3 != 0) {
        misses.push(*op);
    }
}

// pflint::hot
pub fn retire_pass(done: &[(u64, u32)], out: &mut Vec<u32>) {
    out.clear();
    for (_, id) in done {
        out.push(*id);
    }
}

/// Cold path: the scratch buffers are born once at machine construction.
pub fn new_scratch() -> (Vec<(u64, u32)>, Vec<u32>) {
    (Vec::with_capacity(64), Vec::with_capacity(64))
}
