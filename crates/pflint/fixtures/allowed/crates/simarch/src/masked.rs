// pflint fixture: needles that live only in comments, strings, and char
// literals — the lexer masks them all. The old line-regex scanner
// produced phantom findings on every line below.
/* HashMap<u64, u64>, Instant::now(), thread_rng(), OsRng — all prose. */
pub fn doc_only() -> &'static str {
    "SystemTime::now() and FaultPlan from_entropy and unsafe { Mutex }"
}

pub fn braces(input: &str) -> usize {
    let open = '{';
    input.matches(open).count() + "}".len()
}
