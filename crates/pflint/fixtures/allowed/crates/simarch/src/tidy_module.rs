//! A well-formed SimModule: the counter list goes through `registered`,
//! which debug-asserts every name against pmu::registry.

impl crate::module::SimModule for TidyModule {
    fn counters(&self) -> &'static [&'static str] {
        crate::module::registered(&["inst_retired.any"])
    }
}
