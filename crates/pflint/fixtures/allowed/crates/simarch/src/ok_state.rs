// pflint fixture: the same hazard shapes, every one legitimately handled —
// suppressed with a rationale, covered by an invariant hook, or test-only.
use std::collections::HashMap; // pflint::allow(hashmap-iteration)

// pflint::allow(wall-clock)
use std::time::Instant;

pub struct OkCore {
    // Scratch map: drained and key-sorted before anything is reported.
    pub scratch: HashMap<u64, u64>, // pflint::allow(hashmap-iteration)
    pub port: FifoServer,
}

impl Invariants for OkCore {}

pub fn overhead_probe() -> Instant {
    Instant::now() // pflint::allow(wall-clock)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt_from_determinism_rules() {
        let _m: HashMap<u64, u64> = HashMap::new();
        let _t = std::time::Instant::now();
    }
}
