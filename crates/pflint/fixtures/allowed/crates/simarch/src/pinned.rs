// pflint fixture: a reviewed one-off concurrency use outside the
// allowlist, explicitly suppressed with a rationale.
pub fn spawn_audited() {
    // Joined immediately; exists only to warm the scheduler.
    // pflint::allow(concurrency-hygiene)
    let h = std::thread::spawn(|| {});
    h.join().ok();
}
